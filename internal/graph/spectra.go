package graph

import (
	"math"
)

// Closed-form Laplacian spectra for the standard topology families. These
// serve two purposes: they are the ground truth against which the numeric
// eigensolvers in internal/spectral are tested, and they let the experiment
// harness evaluate the paper's bounds exactly on large instances without an
// O(n³) eigendecomposition.

// PathLambda2 returns λ₂ of the path on n nodes: 2(1 − cos(π/n)).
// Laplacian eigenvalues of the path are 2(1 − cos(kπ/n)), k = 0..n−1.
func PathLambda2(n int) float64 {
	if n < 2 {
		return 0
	}
	return 2 * (1 - math.Cos(math.Pi/float64(n)))
}

// CycleLambda2 returns λ₂ of the cycle on n nodes: 2(1 − cos(2π/n)).
// Laplacian eigenvalues of the cycle are 2(1 − cos(2kπ/n)), k = 0..n−1.
func CycleLambda2(n int) float64 {
	if n < 3 {
		return 0
	}
	return 2 * (1 - math.Cos(2*math.Pi/float64(n)))
}

// CompleteLambda2 returns λ₂ of K_n, which is n (with multiplicity n−1).
func CompleteLambda2(n int) float64 {
	if n < 2 {
		return 0
	}
	return float64(n)
}

// StarLambda2 returns λ₂ of the star K_{1,n−1}, which is 1 for n ≥ 3
// (spectrum {0, 1^(n−2), n}).
func StarLambda2(n int) float64 {
	switch {
	case n < 2:
		return 0
	case n == 2:
		return 2
	default:
		return 1
	}
}

// HypercubeLambda2 returns λ₂ of the d-dimensional hypercube, which is 2
// (Laplacian spectrum {2k·(d choose k multiplicity)}, k = 0..d).
func HypercubeLambda2(d int) float64 {
	if d < 1 {
		return 0
	}
	return 2
}

// TorusLambda2 returns λ₂ of the rows×cols torus. The torus is the
// Cartesian product of two cycles, so its Laplacian spectrum is the sumset
// of the two cycle spectra; the smallest nonzero value is
// 2(1 − cos(2π/max(rows, cols))).
func TorusLambda2(rows, cols int) float64 {
	m := rows
	if cols > m {
		m = cols
	}
	return CycleLambda2(m)
}

// GridLambda2 returns λ₂ of the rows×cols mesh (Cartesian product of two
// paths): 2(1 − cos(π/max(rows, cols))).
func GridLambda2(rows, cols int) float64 {
	m := rows
	if cols > m {
		m = cols
	}
	return PathLambda2(m)
}

// CompleteBipartiteLambda2 returns λ₂ of K_{a,b} with a ≤ b, which is
// min(a, b) (spectrum {0, a^(b−1), b^(a−1), a+b}).
func CompleteBipartiteLambda2(a, b int) float64 {
	if a > b {
		a, b = b, a
	}
	if a < 1 {
		return 0
	}
	return float64(a)
}

// PetersenLambda2 returns λ₂ of the Petersen graph: 2.
func PetersenLambda2() float64 { return 2 }

// PathSpectrum returns all n Laplacian eigenvalues of the path, ascending.
func PathSpectrum(n int) []float64 {
	out := make([]float64, n)
	for k := 0; k < n; k++ {
		out[k] = 2 * (1 - math.Cos(float64(k)*math.Pi/float64(n)))
	}
	return out
}

// CycleSpectrum returns all n Laplacian eigenvalues of the cycle, ascending.
func CycleSpectrum(n int) []float64 {
	vals := make([]float64, n)
	for k := 0; k < n; k++ {
		vals[k] = 2 * (1 - math.Cos(2*math.Pi*float64(k)/float64(n)))
	}
	// Values come out unsorted (cos is not monotone over the index range).
	sortFloat64s(vals)
	return vals
}

// HypercubeSpectrum returns all 2^d Laplacian eigenvalues of the hypercube,
// ascending: eigenvalue 2k with multiplicity C(d, k).
func HypercubeSpectrum(d int) []float64 {
	n := 1 << uint(d)
	out := make([]float64, 0, n)
	choose := 1
	for k := 0; k <= d; k++ {
		for c := 0; c < choose; c++ {
			out = append(out, float64(2*k))
		}
		choose = choose * (d - k) / (k + 1)
	}
	return out
}

// KnownLambda2 returns the closed-form λ₂ for graphs produced by the
// constructors in this package, matching on the Name() prefix. ok is false
// for families without a closed form (random graphs, trees, barbells, …).
func KnownLambda2(g *G) (lambda2 float64, ok bool) {
	var a, b int
	switch {
	case scan1(g.Name(), "path(%d)", &a):
		return PathLambda2(a), true
	case scan1(g.Name(), "cycle(%d)", &a):
		return CycleLambda2(a), true
	case scan1(g.Name(), "complete(%d)", &a):
		return CompleteLambda2(a), true
	case scan1(g.Name(), "star(%d)", &a):
		return StarLambda2(a), true
	case scan1(g.Name(), "hypercube(%d)", &a):
		return HypercubeLambda2(a), true
	case scan2(g.Name(), "torus(%dx%d)", &a, &b):
		return TorusLambda2(a, b), true
	case scan2(g.Name(), "grid(%dx%d)", &a, &b):
		return GridLambda2(a, b), true
	case scan2(g.Name(), "K(%d,%d)", &a, &b):
		return CompleteBipartiteLambda2(a, b), true
	case g.Name() == "petersen":
		return PetersenLambda2(), true
	}
	return 0, false
}

func sortFloat64s(v []float64) {
	// insertion sort is fine here; spectra helpers are not hot paths and the
	// stdlib sort would pull in an interface allocation per call site.
	for i := 1; i < len(v); i++ {
		x := v[i]
		j := i - 1
		for j >= 0 && v[j] > x {
			v[j+1] = v[j]
			j--
		}
		v[j+1] = x
	}
}

func scan1(s, format string, a *int) bool {
	var got int
	n, err := sscanfStrict(s, format, &got)
	if err != nil || n != 1 {
		return false
	}
	*a = got
	return true
}

func scan2(s, format string, a, b *int) bool {
	var g1, g2 int
	n, err := sscanfStrict(s, format, &g1, &g2)
	if err != nil || n != 2 {
		return false
	}
	*a, *b = g1, g2
	return true
}
