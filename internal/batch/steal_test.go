package batch_test

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/batch"
	"repro/internal/graph"
)

// TestRangeValidation: malformed unit windows are rejected by Range and, when
// the fields are planted directly, at expansion time.
func TestRangeValidation(t *testing.T) {
	spec := okSpec()
	for _, bad := range [][2]int{{-1, 0}, {5, 5}, {5, 3}} {
		if _, err := spec.Range(bad[0], bad[1]); err == nil {
			t.Fatalf("Range(%d, %d) accepted", bad[0], bad[1])
		}
	}
	direct := spec
	direct.UnitLo, direct.UnitHi = 7, 3
	if _, err := batch.Expand(direct); err == nil {
		t.Fatal("Expand accepted an inverted unit range")
	}
	direct = spec
	direct.UnitHi = -2
	if err := direct.Validate(); err == nil {
		t.Fatal("Validate accepted a negative unit range end")
	}
}

// TestRangeOwnershipArithmetic: OwnedUnitCount's closed form must agree with
// brute-force counting over the expansion for every shard × window shape,
// including windows past the end of the grid and empty intersections.
func TestRangeOwnershipArithmetic(t *testing.T) {
	spec := okSpec()
	units, err := batch.Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	total := len(units)
	for _, m := range []int{1, 2, 3, 7} {
		for i := 0; i < m; i++ {
			for _, win := range [][2]int{{0, 0}, {0, 5}, {3, 17}, {17, 0}, {total - 1, 0}, {total, 0}, {0, total + 50}, {31, 32}} {
				s, err := spec.Shard(i, m)
				if err != nil {
					t.Fatal(err)
				}
				s, err = s.Range(win[0], win[1])
				if err != nil {
					t.Fatal(err)
				}
				brute := 0
				for idx := range units {
					if s.Owns(idx) {
						brute++
					}
				}
				if got := s.OwnedUnitCount(); got != brute {
					t.Fatalf("shard %d/%d window %v: OwnedUnitCount=%d, brute force=%d", i, m, win, got, brute)
				}
			}
		}
	}
}

// TestRangeCarveDisjointExhaustive: carving a shard's tail into sub-ranges —
// the supervisor's steal — partitions the shard's ownership exactly: every
// unit the victim owned is owned by precisely one of {victim prefix, thief
// ranges}, and nothing outside the shard is touched.
func TestRangeCarveDisjointExhaustive(t *testing.T) {
	spec := okSpec()
	units, err := batch.Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	const m = 3
	shard, err := spec.Shard(1, m)
	if err != nil {
		t.Fatal(err)
	}
	// Split the shard at expansion index 20 and carve the tail in two at 40.
	parts := make([]batch.Spec, 0, 3)
	for _, win := range [][2]int{{0, 20}, {20, 40}, {40, 0}} {
		p, err := shard.Range(win[0], win[1])
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, p)
	}
	sum := 0
	for idx := range units {
		owners := 0
		for _, p := range parts {
			if p.Owns(idx) {
				owners++
			}
		}
		want := 0
		if shard.Owns(idx) {
			want = 1
		}
		if owners != want {
			t.Fatalf("index %d owned by %d carve parts, want %d", idx, owners, want)
		}
		sum += owners
	}
	if sum != shard.OwnedUnitCount() {
		t.Fatalf("carve covers %d units, shard owns %d", sum, shard.OwnedUnitCount())
	}
}

// runJournal runs spec into a fresh JSONL journal at path.
func runJournal(t *testing.T, spec batch.Spec, path, origin string) {
	t.Helper()
	sink, err := batch.CreateJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	sink.Origin = origin
	if _, err := batch.RunSink(context.Background(), spec, fakeRun, sink); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMergeAcrossStolenSubRanges is the steal identity guarantee at engine
// level: shard 1 of 3 "dies" after its prefix, its unstarted tail is carved
// into two windowed sub-shards run elsewhere, and the merge of {shard 0,
// victim prefix, two thief journals, shard 2} must reconstruct exact global
// expansion order and a report byte-identical to the uninterrupted sweep —
// with no unit re-run by the resume.
func TestMergeAcrossStolenSubRanges(t *testing.T) {
	spec := okSpec() // 72 units
	const m = 3
	full, err := batch.Run(spec, fakeRun)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	shard1, err := spec.Shard(1, m)
	if err != nil {
		t.Fatal(err)
	}
	// The victim journaled every owned unit below expansion index 31; the
	// steal split point is the next owned index.
	victim, err := shard1.Range(0, 31)
	if err != nil {
		t.Fatal(err)
	}
	thiefA, err := shard1.Range(31, 52)
	if err != nil {
		t.Fatal(err)
	}
	thiefB, err := shard1.Range(52, 0)
	if err != nil {
		t.Fatal(err)
	}

	paths := []string{
		filepath.Join(dir, "shard0.jsonl"),
		filepath.Join(dir, "shard1.jsonl"),
		filepath.Join(dir, "shard1-steal-1.jsonl"),
		filepath.Join(dir, "shard1-steal-2.jsonl"),
		filepath.Join(dir, "shard2.jsonl"),
	}
	s0, err := spec.Shard(0, m)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := spec.Shard(2, m)
	if err != nil {
		t.Fatal(err)
	}
	runJournal(t, s0, paths[0], "")
	runJournal(t, victim, paths[1], "local:s1")
	runJournal(t, thiefA, paths[2], "local:s1-steal-1")
	runJournal(t, thiefB, paths[3], "local:s1-steal-2")
	runJournal(t, s2, paths[4], "")

	journal, stats, err := batch.ReadMergedJournals(paths...)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Journals != 5 || stats.Dropped != 0 {
		t.Fatalf("stats %+v", stats)
	}
	if len(journal.Cells) != len(full.Cells) {
		t.Fatalf("merged %d cells, want %d", len(journal.Cells), len(full.Cells))
	}
	for i, c := range journal.Cells {
		if c.Index != i {
			t.Fatalf("merged cell %d has index %d — stolen sub-ranges broke global order", i, c.Index)
		}
	}
	var calls atomic.Int64
	resumed, err := batch.Resume(context.Background(), spec, func(u batch.Unit, g *graph.G, loads []float64, algoSeed int64) (batch.Outcome, error) {
		calls.Add(1)
		return fakeRun(u, g, loads, algoSeed)
	}, journal, nil)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 0 {
		t.Fatalf("complete stolen set still re-ran %d units", calls.Load())
	}
	if !bytes.Equal(renderAll(t, resumed), renderAll(t, full)) {
		t.Fatal("merged stolen sweep differs from the uninterrupted sweep")
	}

	// Stream-aggregation over the same journal set must see no missing
	// units: thief headers promise only their windows.
	agg := batch.NewAggSink()
	if _, err := batch.MergeJournals(agg, paths...); err != nil {
		t.Fatal(err)
	}
	rep := agg.Report()
	if missing := rep.Missing(); missing != 0 {
		t.Fatalf("stream-agg over stolen journals reports %d missing units", missing)
	}
}

// TestMergeRejectsOverlappingStolenRanges: a thief window that re-covers
// units the victim already journaled is an overlap, not a quiet
// double-count.
func TestMergeRejectsOverlappingStolenRanges(t *testing.T) {
	spec := okSpec()
	shard1, err := spec.Shard(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	victim, err := shard1.Range(0, 40)
	if err != nil {
		t.Fatal(err)
	}
	thief, err := shard1.Range(31, 0) // overlaps the victim's [31, 40)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	a, b := filepath.Join(dir, "victim.jsonl"), filepath.Join(dir, "thief.jsonl")
	runJournal(t, victim, a, "")
	runJournal(t, thief, b, "")
	if _, _, err := batch.ReadMergedJournals(a, b); err == nil || !strings.Contains(err.Error(), "overlap") {
		t.Fatalf("overlapping stolen ranges accepted: %v", err)
	}
}

// TestJournalOriginProvenance: a sink's Origin lands in the header, reads
// back through every scan path, and never perturbs identity — an
// origin-free journal keeps its exact legacy bytes, and journals that
// differ only in origin still merge.
func TestJournalOriginProvenance(t *testing.T) {
	spec := okSpec()
	var plain, annotated bytes.Buffer
	if _, err := batch.RunSink(context.Background(), spec, fakeRun, batch.NewJSONLSink(&plain)); err != nil {
		t.Fatal(err)
	}
	sink := batch.NewJSONLSink(&annotated)
	sink.Origin = "ssh:host1:s0:attempt2"
	if _, err := batch.RunSink(context.Background(), spec, fakeRun, sink); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(plain.Bytes(), []byte("origin")) {
		t.Fatal("origin-free journal mentions origin — legacy bytes changed")
	}
	header := annotated.Bytes()[:bytes.IndexByte(annotated.Bytes(), '\n')]
	if !bytes.Contains(header, []byte(`"origin":"ssh:host1:s0:attempt2"`)) {
		t.Fatalf("annotated header lacks origin: %s", header)
	}
	// Beyond line one the journals are byte-identical.
	if !bytes.Equal(plain.Bytes()[bytes.IndexByte(plain.Bytes(), '\n'):], annotated.Bytes()[bytes.IndexByte(annotated.Bytes(), '\n'):]) {
		t.Fatal("origin annotation leaked past the header line")
	}

	j, err := batch.ReadJournal(bytes.NewReader(annotated.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(j.Origins) != 1 || j.Origins[0] != "ssh:host1:s0:attempt2" {
		t.Fatalf("ReadJournal origins = %v", j.Origins)
	}
	p, err := batch.ScanJournalProgress(bytes.NewReader(annotated.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Origins) != 1 || p.Origins[0] != "ssh:host1:s0:attempt2" {
		t.Fatalf("ScanJournalProgress origins = %v", p.Origins)
	}
	jp, err := batch.ReadJournal(bytes.NewReader(plain.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(jp.Origins) != 1 || jp.Origins[0] != "" {
		t.Fatalf("plain journal origins = %v", jp.Origins)
	}
}

// TestJournalTailerPartialFetch models the ssh launcher's journal fetch: the
// remote journal is copied home repeatedly, each snapshot a longer prefix of
// the final file — often cut mid-line, exactly what a cat racing an appender
// produces. The tailer must fold each increment once, report the torn tail
// while it lasts, and converge on the true tally with nothing double-counted.
func TestJournalTailerPartialFetch(t *testing.T) {
	spec := okSpec()
	shard, err := spec.Shard(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	remote := filepath.Join(dir, "remote.jsonl")
	runJournal(t, shard, remote, "ssh:host1:s0")
	final, err := os.ReadFile(remote)
	if err != nil {
		t.Fatal(err)
	}
	want, err := batch.ScanJournalProgress(bytes.NewReader(final))
	if err != nil {
		t.Fatal(err)
	}

	local := filepath.Join(dir, "fetched.jsonl")
	fetch := func(n int) {
		t.Helper()
		tmp := local + ".tmp"
		if err := os.WriteFile(tmp, final[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Rename(tmp, local); err != nil {
			t.Fatal(err)
		}
	}

	tailer := batch.NewJournalTailer(local)
	// Before any fetch: zero progress, no error.
	p, err := tailer.Scan()
	if err != nil || p.Cells != 0 || p.LastIndex != -1 {
		t.Fatalf("pre-fetch scan: %+v, %v", p, err)
	}
	sawTorn := false
	for _, tenths := range []int{1, 3, 5, 6, 8, 9} { // strictly growing prefixes, mostly mid-line
		n := len(final) * tenths / 10
		fetch(n)
		p, err = tailer.Scan()
		if err != nil {
			t.Fatal(err)
		}
		if final[n-1] != '\n' && p.Torn {
			sawTorn = true
		}
		if p.Cells > want.Cells {
			t.Fatalf("partial fetch tallied %d cells, final journal has %d", p.Cells, want.Cells)
		}
	}
	if !sawTorn {
		t.Fatal("no mid-line fetch reported a torn tail")
	}
	fetch(len(final))
	p, err = tailer.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if p.Cells != want.Cells || p.LastIndex != want.LastIndex || p.Torn || p.Dropped != 0 {
		t.Fatalf("converged tally %+v, want %+v", p, want)
	}
	if len(p.Specs) != 1 || p.Origins[0] != "ssh:host1:s0" {
		t.Fatalf("tailer header tally: specs=%d origins=%v", len(p.Specs), p.Origins)
	}
	if !p.Done() {
		t.Fatal("complete fetched journal not Done")
	}
}

// TestJournalTailerShrinkResetAfterSteal: a steal rewrites a tailed path
// with a different ownership — a shorter sub-range journal replaces the
// victim's. The size drop must reset the tailer's tally so the new file is
// re-read from scratch, not folded on top of stale counts.
func TestJournalTailerShrinkResetAfterSteal(t *testing.T) {
	spec := okSpec()
	shard1, err := spec.Shard(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "s1.jsonl")
	runJournal(t, shard1, path, "local:s1")

	tailer := batch.NewJournalTailer(path)
	p, err := tailer.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if p.Cells != shard1.OwnedUnitCount() {
		t.Fatalf("initial tally %d cells, want %d", p.Cells, shard1.OwnedUnitCount())
	}

	// The steal: ownership shrinks to the tail window and the path is
	// rewritten from scratch (shorter file, different header).
	stolen, err := shard1.Range(50, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	runJournal(t, stolen, path, "local:s1-steal-1")

	p, err = tailer.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if p.Cells != stolen.OwnedUnitCount() {
		t.Fatalf("post-steal tally %d cells, want %d — shrink did not reset", p.Cells, stolen.OwnedUnitCount())
	}
	if len(p.Specs) != 1 || p.Specs[0].UnitLo != 50 || p.Origins[0] != "local:s1-steal-1" {
		t.Fatalf("post-steal header tally: %+v origins=%v", p.Specs, p.Origins)
	}
	if !p.Done() {
		t.Fatal("rewritten sub-range journal not Done against its own header")
	}
}

// TestRangedJournalHeaderRoundTrip: UnitLo/UnitHi survive the header
// round-trip and drive Done()'s denominator, and an unbounded window is
// omitted from the bytes entirely.
func TestRangedJournalHeaderRoundTrip(t *testing.T) {
	spec := okSpec()
	shard, err := spec.Shard(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	ranged, err := shard.Range(10, 40)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := batch.RunSink(context.Background(), ranged, fakeRun, batch.NewJSONLSink(&buf)); err != nil {
		t.Fatal(err)
	}
	header := buf.Bytes()[:bytes.IndexByte(buf.Bytes(), '\n')]
	for _, want := range []string{`"unit_lo":10`, `"unit_hi":40`} {
		if !bytes.Contains(header, []byte(want)) {
			t.Fatalf("ranged header lacks %s: %s", want, header)
		}
	}
	p, err := batch.ScanJournalProgress(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if p.Cells != ranged.OwnedUnitCount() || !p.Done() {
		t.Fatalf("ranged journal: %d cells, done=%v, want %d cells done", p.Cells, p.Done(), ranged.OwnedUnitCount())
	}

	var unbounded bytes.Buffer
	tail, err := shard.Range(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := batch.RunSink(context.Background(), tail, fakeRun, batch.NewJSONLSink(&unbounded)); err != nil {
		t.Fatal(err)
	}
	header = unbounded.Bytes()[:bytes.IndexByte(unbounded.Bytes(), '\n')]
	if bytes.Contains(header, []byte("unit_hi")) {
		t.Fatalf("unbounded window serialized an upper end: %s", header)
	}
	if !bytes.Contains(header, []byte(`"unit_lo":10`)) {
		t.Fatalf("tail window lost its start: %s", header)
	}
}

// TestEmptyRangedShardJournalsHeaderOnly: a window that owns nothing — the
// degenerate steal — journals a lone header, counts as done, and merges
// cleanly alongside real journals.
func TestEmptyRangedShardJournalsHeaderOnly(t *testing.T) {
	spec := okSpec()
	units, err := batch.Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	shard, err := spec.Shard(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	// [69, ∞) with 72 units and shard 1 of 3: the only indices ≥ 69 are
	// 69, 70, 71; shard 1 owns 70 only — shrink below that.
	empty, err := shard.Range(len(units)-1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if empty.Owns(len(units) - 1) {
		// Index 71 % 3 == 2, not shard 1's — the window really is empty.
		t.Fatal("test premise broken: window owns the last unit")
	}
	if empty.OwnedUnitCount() != 0 {
		t.Fatalf("empty window owns %d units", empty.OwnedUnitCount())
	}
	dir := t.TempDir()
	a, b := filepath.Join(dir, "empty.jsonl"), filepath.Join(dir, "rest.jsonl")
	runJournal(t, empty, a, "")
	p, err := batch.ScanJournalProgressFile(a)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cells != 0 || !p.Done() {
		t.Fatalf("empty ranged journal: %d cells, done=%v", p.Cells, p.Done())
	}
	head, err := shard.Range(0, len(units)-1)
	if err != nil {
		t.Fatal(err)
	}
	runJournal(t, head, b, "")
	if _, stats, err := batch.ReadMergedJournals(a, b); err != nil || stats.Cells != shard.OwnedUnitCount() {
		t.Fatalf("merge with empty ranged journal: %+v, %v", stats, err)
	}
}

// okSpecSanity pins the expansion size the windows above are written
// against, so a future grid change fails here with a clear message instead
// of silently weakening the carve tests.
func TestStealTestGridSanity(t *testing.T) {
	units, err := batch.Expand(okSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 72 {
		t.Fatalf("okSpec expands to %d units; the steal tests assume 72 — update their windows", len(units))
	}
	_ = fmt.Sprintf // keep fmt imported if assertions above change
}
