package orchestrator

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/batch"
)

// shardPhase is a shard's lifecycle as the supervisor sees it.
type shardPhase int

const (
	phaseRunning shardPhase = iota
	phaseDone
	phaseFailed
)

// shardState is the tracker's view of one shard: the latest journal scan
// plus when it last moved.
type shardState struct {
	progress   batch.JournalProgress
	phase      shardPhase
	restarts   int
	lastChange time.Time
	stallSeen  bool // a stall warning was already printed for this episode
}

// tracker folds periodic journal scans into shard-aware progress: units
// done/total per shard, an overall ETA from the observed completion rate
// (the streaming fold over everything journaled so far), and stall
// detection for shards whose journals stop growing while their process is
// supposedly alive. It is the supervisor's bookkeeping, split out pure so
// the torn-tail/stall/ETA arithmetic is testable without spawning anything.
type tracker struct {
	plan   *Plan
	start  time.Time
	shards []shardState
}

func newTracker(p *Plan, now time.Time) *tracker {
	t := &tracker{plan: p, start: now, shards: make([]shardState, len(p.Shards))}
	for i := range t.shards {
		t.shards[i].lastChange = now
	}
	return t
}

// observe folds shard i's latest journal scan. Progress is measured in
// complete cells; a torn tail or a header landing also counts as movement
// (the shard is alive and writing, just mid-line).
func (t *tracker) observe(i int, p batch.JournalProgress, now time.Time) {
	s := &t.shards[i]
	moved := p.Cells != s.progress.Cells ||
		len(p.Specs) != len(s.progress.Specs) ||
		p.Torn != s.progress.Torn
	s.progress = p
	if moved {
		s.lastChange = now
		s.stallSeen = false
	}
}

// setPhase records a lifecycle transition (process exited, restarted,
// exhausted its retries).
func (t *tracker) setPhase(i int, ph shardPhase) { t.shards[i].phase = ph }

func (t *tracker) addRestart(i int) { t.shards[i].restarts++ }

// stalled reports shards that are supposed to be running but whose journal
// has not moved for at least threshold — the never-writes / wedged-child
// signal. Each stall episode is reported once; new movement rearms it.
func (t *tracker) stalled(now time.Time, threshold time.Duration) []int {
	var out []int
	for i := range t.shards {
		s := &t.shards[i]
		if s.phase == phaseRunning && !s.stallSeen && now.Sub(s.lastChange) >= threshold {
			s.stallSeen = true
			out = append(out, i)
		}
	}
	return out
}

// done counts cells journaled across all shards.
func (t *tracker) done() int {
	n := 0
	for i := range t.shards {
		n += t.shards[i].progress.Cells
	}
	return n
}

// eta extrapolates the remaining wall time from the completion rate
// observed so far (zero until the first cell lands; zero again when
// everything is done).
func (t *tracker) eta(now time.Time) time.Duration {
	done, total := t.done(), t.plan.TotalUnits()
	elapsed := now.Sub(t.start)
	if done <= 0 || elapsed <= 0 || done >= total {
		return 0
	}
	perUnit := elapsed / time.Duration(done)
	return time.Duration(total-done) * perUnit
}

// render is the one-line progress display: per-shard done/total with
// restart and state markers, the global fold, and the ETA.
func (t *tracker) render(now time.Time) string {
	var b strings.Builder
	for i := range t.shards {
		s := &t.shards[i]
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "s%d %d/%d", t.plan.Shards[i].Index, s.progress.Cells, t.plan.Shards[i].Units)
		if s.restarts > 0 {
			fmt.Fprintf(&b, " (r%d)", s.restarts)
		}
		switch {
		case s.phase == phaseFailed:
			b.WriteString(" FAILED")
		case s.phase == phaseDone:
			b.WriteString(" ok")
		}
	}
	done, total := t.done(), t.plan.TotalUnits()
	pct := 0
	if total > 0 {
		pct = 100 * done / total
	}
	fmt.Fprintf(&b, " | %d/%d units (%d%%)", done, total, pct)
	if eta := t.eta(now); eta > 0 {
		fmt.Fprintf(&b, " eta %s", eta.Round(time.Second))
	}
	return b.String()
}
