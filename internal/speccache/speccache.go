// Package speccache memoizes the expensive per-topology spectral quantities
// the rest of the system keeps asking for: λ₂ (the algebraic connectivity
// behind every convergence bound), γ of the uniform diffusion matrix (the
// second-order scheme's acceleration input), γ of the paper's diffusion
// matrix, and the ℓ₂-minimal balancing flow of a load vector.
//
// All of these are pure functions of the graph (plus, for flows, the load
// vector), and all of them cost an eigendecomposition or a Laplacian solve —
// O(n³) for dense instances. A grid sweep asks for the same (topology, n)
// values in every one of its units, and the experiment harness asks for them
// again per experiment; before this package each call site hoisted its own
// per-file copy. The cache is keyed on graph.G.Fingerprint (name + node
// count + edge set), so distinct instances never collide and repeated
// instances — across units, experiments and processes' worth of cells —
// compute each quantity exactly once per process.
//
// Concurrency: lookups are safe from any number of goroutines, and
// concurrent first requests for the same key are deduplicated (one computes,
// the rest block on the result), which keeps parallel sweeps from burning
// cores on redundant eigensolves. Values are memoized verbatim from
// internal/spectral and internal/flow, so cached and uncached runs are
// numerically identical.
package speccache

import (
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/spectral"
)

// quantity indexes the per-kind statistics counters.
type quantity int

const (
	qLambda2 quantity = iota
	qGamma
	qPaperGamma
	qPaperGap
	qFlow
	numQuantities
)

func (q quantity) String() string {
	switch q {
	case qLambda2:
		return "λ₂"
	case qGamma:
		return "γ"
	case qPaperGamma:
		return "γ_P"
	case qPaperGap:
		return "µ_P"
	case qFlow:
		return "optflow"
	}
	return fmt.Sprintf("quantity(%d)", int(q))
}

// scalarKey identifies one memoized scalar: which quantity, of which graph.
type scalarKey struct {
	q  quantity
	fp uint64
}

// flowKey identifies one memoized optimal flow: graph × load vector.
type flowKey struct {
	fp    uint64
	loads uint64
}

// scalarEntry carries one value; once deduplicates concurrent first
// computations without holding the cache lock during the eigensolve.
type scalarEntry struct {
	once sync.Once
	val  float64
	err  error
}

type flowEntry struct {
	once sync.Once
	val  *flow.EdgeFlow
	err  error
}

// Cache memoizes spectral quantities per graph fingerprint. The zero value
// is not usable; call New.
type Cache struct {
	mu      sync.Mutex
	scalars map[scalarKey]*scalarEntry
	flows   map[flowKey]*flowEntry
	// diskDir, when non-empty, is the disk-spill directory scalars are
	// shared through across processes (see disk.go).
	diskDir string

	lookups  [numQuantities]atomic.Uint64
	computes [numQuantities]atomic.Uint64
	diskHits [numQuantities]atomic.Uint64
}

// New returns an empty cache.
func New() *Cache {
	return &Cache{
		scalars: make(map[scalarKey]*scalarEntry),
		flows:   make(map[flowKey]*flowEntry),
	}
}

// shared is the process-wide cache used by the package-level helpers —
// the one core.Balance, the batch engine's run functions and the experiment
// harness all thread through, so a λ₂ computed for a grid unit is already
// there when an experiment asks for the same topology.
var shared = New()

// Shared returns the process-wide cache.
func Shared() *Cache { return shared }

// scalar runs the common memoization path for one scalar quantity.
func (c *Cache) scalar(q quantity, g *graph.G, compute func() (float64, error)) (float64, error) {
	c.lookups[q].Add(1)
	key := scalarKey{q: q, fp: g.Fingerprint()}
	c.mu.Lock()
	e, ok := c.scalars[key]
	if !ok {
		e = &scalarEntry{}
		c.scalars[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		// Memory missed; the disk spill is the second level — a hit there is
		// another process's (or a previous run's) eigensolve reused.
		if v, ok := c.diskLoad(q, key.fp); ok {
			c.diskHits[q].Add(1)
			e.val = v
			return
		}
		c.computes[q].Add(1)
		e.val, e.err = compute()
		if e.err == nil {
			c.diskSave(q, key.fp, e.val)
		}
	})
	return e.val, e.err
}

// Lambda2 returns the memoized algebraic connectivity of g (via
// spectral.Lambda2 on a miss).
func (c *Cache) Lambda2(g *graph.G) (float64, error) {
	return c.scalar(qLambda2, g, func() (float64, error) { return spectral.Lambda2(g) })
}

// MustLambda2 is Lambda2 that panics on error; for graphs valid by
// construction (the experiment suites).
func (c *Cache) MustLambda2(g *graph.G) float64 {
	v, err := c.Lambda2(g)
	if err != nil {
		panic(err)
	}
	return v
}

// Gamma returns the memoized second-largest eigenvalue magnitude of the
// uniform diffusion matrix of g — the quantity behind the second-order
// scheme's optimal β. Computed through spectral.GammaOf, so structured
// families take the closed form and large graphs the implicit Lanczos path
// without ever materializing the matrix.
func (c *Cache) Gamma(g *graph.G) (float64, error) {
	return c.scalar(qGamma, g, func() (float64, error) {
		return spectral.GammaOf(g)
	})
}

// PaperGamma returns the memoized second-largest eigenvalue magnitude of
// the paper's diffusion matrix (transfer rule 1/(4·max(dᵢ,dⱼ))), through
// spectral.PaperGammaOf's closed-form/dense/Lanczos routing.
func (c *Cache) PaperGamma(g *graph.G) (float64, error) {
	return c.scalar(qPaperGamma, g, func() (float64, error) {
		return spectral.PaperGammaOf(g)
	})
}

// PaperEigenGap returns µ = 1 − γ_P for the paper's diffusion matrix. It is
// a first-class cached quantity with its own disk-spill key: deriving it on
// the fly from PaperGamma would be nearly free in memory, but making it a
// quantity of its own means a shard process that only ever asks for the gap
// still shares the value across the fleet through the spill.
func (c *Cache) PaperEigenGap(g *graph.G) (float64, error) {
	return c.scalar(qPaperGap, g, func() (float64, error) {
		gp, err := c.PaperGamma(g)
		if err != nil {
			return 0, err
		}
		return 1 - gp, nil
	})
}

// OptimalFlow returns the memoized ℓ₂-minimal balancing flow of load vector
// l on g (via flow.Optimal on a miss). The returned flow is a private copy:
// callers may mutate it freely without corrupting the cache.
func (c *Cache) OptimalFlow(g *graph.G, l matrix.Vector) (*flow.EdgeFlow, error) {
	c.lookups[qFlow].Add(1)
	key := flowKey{fp: g.Fingerprint(), loads: hashLoads(l)}
	c.mu.Lock()
	e, ok := c.flows[key]
	if !ok {
		e = &flowEntry{}
		c.flows[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		c.computes[qFlow].Add(1)
		e.val, e.err = flow.Optimal(g, l)
	})
	if e.err != nil {
		return nil, e.err
	}
	// The copy is bound to the caller's graph instance, not the one the
	// value was first computed on: equal fingerprints guarantee identical
	// edge lists, and flow operations (Sub, Divergence) compare graph
	// pointers, so a cache hit across separately built suites must not leak
	// the original instance.
	out := flow.NewEdgeFlow(g)
	copy(out.Values, e.val.Values)
	return out, nil
}

// hashLoads folds a load vector's exact bit pattern into the flow cache key.
func hashLoads(l matrix.Vector) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range l {
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// Reset drops every memoized value and zeroes the statistics. Intended for
// tests and for processes that rebuild topologies wholesale (e.g. long
// dynamic-network runs that never revisit a graph).
func (c *Cache) Reset() {
	c.mu.Lock()
	c.scalars = make(map[scalarKey]*scalarEntry)
	c.flows = make(map[flowKey]*flowEntry)
	c.mu.Unlock()
	for q := quantity(0); q < numQuantities; q++ {
		c.lookups[q].Store(0)
		c.computes[q].Store(0)
		c.diskHits[q].Store(0)
	}
}

// QuantityStats counts one quantity's cache traffic.
type QuantityStats struct {
	// Computes is how many times the quantity was actually computed (cache
	// misses all the way down); Hits is how many lookups were served from
	// memory; DiskHits how many were loaded from the disk spill instead of
	// computed.
	Computes, Hits, DiskHits uint64
}

// Stats is a point-in-time snapshot of the cache's effectiveness, one entry
// per memoized quantity, plus the process-wide spectral solve-path counters
// — which solver (closed form, dense, Lanczos, inverse power) actually ran
// behind the cache misses. The large-n smoke gate asserts Solves.Dense == 0
// on million-node runs through this field.
type Stats struct {
	Lambda2     QuantityStats
	Gamma       QuantityStats
	PaperGamma  QuantityStats
	PaperGap    QuantityStats
	OptimalFlow QuantityStats
	Solves      spectral.SolveCounts
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	snap := func(q quantity) QuantityStats {
		lookups, computes, disk := c.lookups[q].Load(), c.computes[q].Load(), c.diskHits[q].Load()
		return QuantityStats{Computes: computes, Hits: lookups - computes - disk, DiskHits: disk}
	}
	return Stats{
		Lambda2:     snap(qLambda2),
		Gamma:       snap(qGamma),
		PaperGamma:  snap(qPaperGamma),
		PaperGap:    snap(qPaperGap),
		OptimalFlow: snap(qFlow),
		Solves:      spectral.SolveStats(),
	}
}

// String renders the snapshot as one human-readable line.
func (s Stats) String() string {
	part := func(name string, q QuantityStats) string {
		if q.DiskHits > 0 {
			return fmt.Sprintf("%s %d computed/%d disk/%d hits", name, q.Computes, q.DiskHits, q.Hits)
		}
		return fmt.Sprintf("%s %d computed/%d hits", name, q.Computes, q.Hits)
	}
	return part("λ₂", s.Lambda2) + ", " + part("γ", s.Gamma) + ", " +
		part("γ_P", s.PaperGamma) + ", " + part("µ_P", s.PaperGap) + ", " +
		part("optflow", s.OptimalFlow) + fmt.Sprintf(
		", solves: %d closed-form/%d dense/%d lanczos/%d invpower",
		s.Solves.ClosedForm, s.Solves.Dense, s.Solves.Lanczos, s.Solves.InversePower)
}

// Package-level helpers against the shared cache, so hot call sites read as
// plainly as the spectral calls they replace.

// Lambda2 is Shared().Lambda2.
func Lambda2(g *graph.G) (float64, error) { return shared.Lambda2(g) }

// MustLambda2 is Shared().MustLambda2.
func MustLambda2(g *graph.G) float64 { return shared.MustLambda2(g) }

// Gamma is Shared().Gamma.
func Gamma(g *graph.G) (float64, error) { return shared.Gamma(g) }

// PaperGamma is Shared().PaperGamma.
func PaperGamma(g *graph.G) (float64, error) { return shared.PaperGamma(g) }

// PaperEigenGap is Shared().PaperEigenGap.
func PaperEigenGap(g *graph.G) (float64, error) { return shared.PaperEigenGap(g) }

// OptimalFlow is Shared().OptimalFlow.
func OptimalFlow(g *graph.G, l matrix.Vector) (*flow.EdgeFlow, error) {
	return shared.OptimalFlow(g, l)
}
