package diffusion

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/workload"
)

func TestOPSExactTerminationHypercube(t *testing.T) {
	// Q_d has d+1 distinct Laplacian eigenvalues {0, 2, 4, …, 2d}; OPS must
	// balance in exactly d rounds.
	for d := 2; d <= 5; d++ {
		g := graph.Hypercube(d)
		ops, err := NewOPS(g, workload.Continuous(workload.Spike, g.N(), 1e6, nil))
		if err != nil {
			t.Fatal(err)
		}
		if ops.Rounds() != d {
			t.Fatalf("Q%d: OPS rounds = %d, want %d", d, ops.Rounds(), d)
		}
		for !ops.Done() {
			ops.Step()
		}
		if phi := ops.Potential(); phi > 1e-12*1e12 {
			t.Fatalf("Q%d: residual Φ = %v after %d rounds", d, phi, ops.Rounds())
		}
	}
}

func TestOPSExactTerminationVariousGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, g := range []*graph.G{
		graph.Cycle(12),
		graph.Path(10),
		graph.Complete(9),
		graph.Star(11),
		graph.Torus(4, 4),
		graph.Petersen(),
	} {
		init := workload.Continuous(workload.Uniform, g.N(), 1e4, rng)
		ops, err := NewOPS(g, init)
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		phi0 := ops.Potential()
		for !ops.Done() {
			ops.Step()
		}
		// Exact in theory; allow generous float slack relative to the start.
		if phi := ops.Potential(); phi > 1e-14*phi0+1e-10 {
			t.Fatalf("%s: residual Φ = %v (Φ⁰ = %v) after %d rounds", g.Name(), phi, phi0, ops.Rounds())
		}
	}
}

func TestOPSCompleteGraphOneRound(t *testing.T) {
	// K_n has one distinct nonzero eigenvalue (n), so OPS is one round.
	g := graph.Complete(8)
	ops, err := NewOPS(g, workload.Continuous(workload.Spike, 8, 800, nil))
	if err != nil {
		t.Fatal(err)
	}
	if ops.Rounds() != 1 {
		t.Fatalf("K8 OPS rounds = %d, want 1", ops.Rounds())
	}
	ops.Step()
	if !ops.Done() {
		t.Fatal("should be done after one step")
	}
	if phi := ops.Potential(); phi > 1e-18 {
		t.Fatalf("K8 residual Φ = %v", phi)
	}
}

func TestOPSConservesLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.Torus(4, 5)
	init := workload.Continuous(workload.Exponential, g.N(), 100, rng)
	ops, err := NewOPS(g, init)
	if err != nil {
		t.Fatal(err)
	}
	before := ops.Load.Total()
	for !ops.Done() {
		ops.Step()
	}
	if math.Abs(ops.Load.Total()-before) > 1e-8*(1+math.Abs(before)) {
		t.Fatalf("OPS must conserve load: %v → %v", before, ops.Load.Total())
	}
}

func TestOPSStepAfterDoneIsNoop(t *testing.T) {
	g := graph.Complete(5)
	ops, err := NewOPS(g, workload.Continuous(workload.Spike, 5, 50, nil))
	if err != nil {
		t.Fatal(err)
	}
	for !ops.Done() {
		ops.Step()
	}
	v := ops.Load.Vector().Clone()
	ops.Step()
	if !ops.Load.Vector().ApproxEqual(v, 0) {
		t.Fatal("post-Done step must not move load")
	}
}

func TestOPSRejectsDisconnected(t *testing.T) {
	b := graph.NewBuilder("disc", 4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	if _, err := NewOPS(b.MustFinish(), []float64{1, 2, 3, 4}); err == nil {
		t.Fatal("expected error for disconnected graph")
	}
}

func TestOPSRejectsLengthMismatch(t *testing.T) {
	if _, err := NewOPS(graph.Cycle(4), []float64{1}); err == nil {
		t.Fatal("expected length error")
	}
}

func TestOPSStabilizedOrderingOnLargeCycle(t *testing.T) {
	// cycle(64) has 32 distinct nonzero eigenvalues with λ_max/λ₂ ≈ 415;
	// in ascending application order the final cancellation is destroyed
	// by intermediate growth (residual ~1e6·), while the Leja-stabilized
	// order keeps the residual at floating-point noise.
	g := graph.Cycle(64)
	ops, err := NewOPS(g, workload.Continuous(workload.Spike, g.N(), 1e6, nil))
	if err != nil {
		t.Fatal(err)
	}
	phi0 := ops.Potential()
	for !ops.Done() {
		ops.Step()
	}
	if rel := ops.Potential() / phi0; rel > 1e-15 {
		t.Fatalf("cycle(64): relative residual %v after stabilized OPS", rel)
	}
}

func TestOPSBeatsIterativeSchemesOnCycle(t *testing.T) {
	// OPS terminates in m = ⌊n/2⌋ rounds on the cycle; the first-order
	// scheme needs orders of magnitude more for the same residual.
	g := graph.Cycle(16)
	init := workload.Continuous(workload.Spike, g.N(), 1e6, nil)
	ops, err := NewOPS(g, init)
	if err != nil {
		t.Fatal(err)
	}
	for !ops.Done() {
		ops.Step()
	}
	fo := NewFirstOrder(g, init)
	for i := 0; i < ops.Rounds(); i++ {
		fo.Step()
	}
	if ops.Potential() >= fo.Potential() {
		t.Fatalf("OPS (Φ=%v) not ahead of first order (Φ=%v) at round %d",
			ops.Potential(), fo.Potential(), ops.Rounds())
	}
}
