package batch_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/batch"
)

// journalBytes runs okSpec through a JSONL sink and returns the journal.
func journalBytes(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := batch.RunSink(context.Background(), okSpec(), fakeRun, batch.NewJSONLSink(&buf)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestScanJournalProgressComplete(t *testing.T) {
	b := journalBytes(t)
	p, err := batch.ScanJournalProgress(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	want := okSpec().UnitCount()
	if p.Cells != want || p.Failed != 0 || p.Torn || p.Dropped != 0 {
		t.Fatalf("progress = %+v, want %d clean cells", p, want)
	}
	if len(p.Specs) != 1 {
		t.Fatalf("got %d headers, want 1", len(p.Specs))
	}
	if p.LastIndex != want-1 {
		t.Fatalf("LastIndex = %d, want %d", p.LastIndex, want-1)
	}
	if !p.Done() {
		t.Fatal("complete journal not reported Done")
	}
}

// TestScanJournalProgressTornTail cuts the journal mid-line — the state a
// SIGKILL during a write leaves behind — and checks the scan reports Torn
// without treating it as corruption or an error.
func TestScanJournalProgressTornTail(t *testing.T) {
	b := journalBytes(t)
	lines := bytes.SplitAfter(b, []byte("\n"))
	// Keep the header and 5 cells, then half of the 6th cell's line.
	torn := bytes.Join(lines[:6], nil)
	torn = append(torn, lines[6][:len(lines[6])/2]...)
	p, err := batch.ScanJournalProgress(bytes.NewReader(torn))
	if err != nil {
		t.Fatal(err)
	}
	if p.Cells != 5 || !p.Torn || p.Dropped != 0 {
		t.Fatalf("progress = %+v, want 5 cells + torn tail", p)
	}
	if p.Done() {
		t.Fatal("torn journal reported Done")
	}
}

// TestScanJournalProgressCorruptInterior flips a complete interior line into
// garbage: that is corruption (Dropped), not a torn tail, and the scan stops
// there like ReadJournal does.
func TestScanJournalProgressCorruptInterior(t *testing.T) {
	b := journalBytes(t)
	lines := bytes.SplitAfter(b, []byte("\n"))
	lines[3] = []byte("{not json\n")
	p, err := batch.ScanJournalProgress(bytes.NewReader(bytes.Join(lines, nil)))
	if err != nil {
		t.Fatal(err)
	}
	if p.Cells != 2 || p.Torn {
		t.Fatalf("progress = %+v, want 2 cells before the corruption", p)
	}
	if p.Dropped != len(lines)-3-1 { // everything from the bad line on (last split entry is empty)
		t.Fatalf("Dropped = %d, want %d", p.Dropped, len(lines)-3-1)
	}
}

// TestScanJournalProgressHeaderOnly covers the empty-shard shape: a journal
// holding a lone spec header is zero units done, not an error — and when the
// header says the shard owns nothing, it is already Done.
func TestScanJournalProgressHeaderOnly(t *testing.T) {
	spec := okSpec()
	var buf bytes.Buffer
	sink := batch.NewJSONLSink(&buf)
	if err := sink.Spec(spec); err != nil {
		t.Fatal(err)
	}
	p, err := batch.ScanJournalProgress(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if p.Cells != 0 || p.LastIndex != -1 || p.Torn || p.Dropped != 0 || len(p.Specs) != 1 {
		t.Fatalf("progress = %+v, want header-only", p)
	}
	if p.Done() {
		t.Fatal("unsharded header-only journal reported Done")
	}

	// A shard that owns zero units (m > unit count) journals only its header
	// and is complete by construction.
	empty, err := spec.Shard(spec.UnitCount(), spec.UnitCount()+1)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := batch.NewJSONLSink(&buf).Spec(empty); err != nil {
		t.Fatal(err)
	}
	p, err = batch.ScanJournalProgress(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !p.Done() {
		t.Fatalf("empty shard's header-only journal not Done: %+v", p)
	}
}

// TestScanJournalProgressFileMissing is the shard-never-started shape the
// supervisor's stall detector leans on: no file yet means zero progress,
// not an error.
func TestScanJournalProgressFileMissing(t *testing.T) {
	p, err := batch.ScanJournalProgressFile(filepath.Join(t.TempDir(), "nope.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if p.Cells != 0 || p.LastIndex != -1 || len(p.Specs) != 0 {
		t.Fatalf("progress = %+v, want zero", p)
	}
}

// TestScanJournalProgressWhileGrowing re-scans a journal file between
// appends — including appends cut mid-line — the way the supervisor tails a
// live shard: every scan must see exactly the complete lines written so
// far, with the partial tail reported Torn and resolved by the next scan.
func TestScanJournalProgressWhileGrowing(t *testing.T) {
	b := journalBytes(t)
	lines := bytes.SplitAfter(b, []byte("\n"))
	path := filepath.Join(t.TempDir(), "grow.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	wrote := 0 // complete cell lines on disk
	check := func(torn bool) {
		t.Helper()
		p, err := batch.ScanJournalProgressFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if p.Cells != wrote || p.Torn != torn || p.Dropped != 0 {
			t.Fatalf("after %d complete lines (torn=%v): progress = %+v", wrote, torn, p)
		}
	}

	check(false) // empty file
	for i, line := range lines {
		if len(line) == 0 {
			continue
		}
		// Write the first half, scan (torn unless the half is empty), then
		// finish the line and scan again.
		half := len(line) / 2
		if _, err := f.Write(line[:half]); err != nil {
			t.Fatal(err)
		}
		if half > 0 {
			check(true)
		}
		if _, err := f.Write(line[half:]); err != nil {
			t.Fatal(err)
		}
		if i > 0 { // line 0 is the header
			wrote++
		}
		check(false)
	}
	if wrote != okSpec().UnitCount() {
		t.Fatalf("test wrote %d cells, want %d", wrote, okSpec().UnitCount())
	}
}

// TestJournalTailerMatchesFullRescan appends a journal byte range by byte
// range — including cuts mid-line — and checks the incremental tailer's
// tally equals a from-scratch scan at every step. This is the supervisor's
// cheap poll path: same numbers, O(new data) per Scan.
func TestJournalTailerMatchesFullRescan(t *testing.T) {
	b := journalBytes(t)
	path := filepath.Join(t.TempDir(), "tail.jsonl")
	tailer := batch.NewJournalTailer(path)

	// Before the file exists: zero progress, no error.
	p, err := tailer.Scan()
	if err != nil || p.Cells != 0 || p.LastIndex != -1 {
		t.Fatalf("pre-creation scan: %+v err=%v", p, err)
	}

	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// Append in ragged 37-byte chunks so most scans land mid-line.
	for start := 0; start < len(b); start += 37 {
		end := start + 37
		if end > len(b) {
			end = len(b)
		}
		if _, err := f.Write(b[start:end]); err != nil {
			t.Fatal(err)
		}
		got, err := tailer.Scan()
		if err != nil {
			t.Fatal(err)
		}
		want, err := batch.ScanJournalProgressFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if got.Torn && !want.Torn && want.Cells == got.Cells+1 {
			// The cut landed exactly before a line's newline: the full
			// rescan counts the parseable line (as ReadJournal would), the
			// tailer waits for the newline. Both are right; the next chunk
			// reconverges them.
			continue
		}
		if got.Cells != want.Cells || got.Failed != want.Failed || got.Torn != want.Torn ||
			got.LastIndex != want.LastIndex || len(got.Specs) != len(want.Specs) {
			t.Fatalf("after %d bytes: tailer %+v != rescan %+v", end, got, want)
		}
	}
	final, _ := tailer.Scan()
	if final.Cells != okSpec().UnitCount() || final.Torn {
		t.Fatalf("final tally: %+v", final)
	}
}

// TestJournalTailerResetsOnRewrite: a ReplaceJSONL resume truncates and
// rewrites the journal; the tailer must notice the shrink and start over
// rather than folding the new file's cells on top of the old tally.
func TestJournalTailerResetsOnRewrite(t *testing.T) {
	b := journalBytes(t)
	path := filepath.Join(t.TempDir(), "tail.jsonl")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	tailer := batch.NewJournalTailer(path)
	if p, err := tailer.Scan(); err != nil || p.Cells != okSpec().UnitCount() {
		t.Fatalf("initial scan: %+v err=%v", p, err)
	}

	// Rewrite shorter: header + 3 cells.
	lines := bytes.SplitAfter(b, []byte("\n"))
	if err := os.WriteFile(path, bytes.Join(lines[:4], nil), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := tailer.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if p.Cells != 3 || len(p.Specs) != 1 {
		t.Fatalf("post-rewrite tally not reset: %+v", p)
	}
}

// TestCreateJSONLRefusesExisting is the two-shards-one-journal accident:
// the second process to open the same path must fail loudly before writing
// a byte, not interleave lines.
func TestCreateJSONLRefusesExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s0.jsonl")
	first, err := batch.CreateJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	if _, err := batch.CreateJSONL(path); err == nil {
		t.Fatal("second CreateJSONL on the same path succeeded")
	} else if !strings.Contains(err.Error(), "already exists") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

// TestReplaceJSONLTruncates is the resume-in-place open: replacing an
// existing journal after reading it back is deliberate and allowed.
func TestReplaceJSONLTruncates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s0.jsonl")
	if err := os.WriteFile(path, []byte("old partial journal\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	sink, err := batch.ReplaceJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Spec(okSpec()); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(b, []byte("old partial")) {
		t.Fatal("ReplaceJSONL did not truncate")
	}
	p, err := batch.ScanJournalProgress(bytes.NewReader(b))
	if err != nil || len(p.Specs) != 1 {
		t.Fatalf("rewritten journal unreadable: %+v err=%v", p, err)
	}
}
