package spectral

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/matrix"
)

const eigTol = 1e-8

func TestEigenSymDiagonal(t *testing.T) {
	a, _ := matrix.NewDenseFrom([][]float64{{3, 0, 0}, {0, 1, 0}, {0, 0, 2}})
	vals, _, err := EigenSym(a, false)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > eigTol {
			t.Fatalf("vals = %v, want %v", vals, want)
		}
	}
}

func TestEigenSymKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	a, _ := matrix.NewDenseFrom([][]float64{{2, 1}, {1, 2}})
	vals, vecs, err := EigenSym(a, true)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-1) > eigTol || math.Abs(vals[1]-3) > eigTol {
		t.Fatalf("vals = %v", vals)
	}
	// Check A·v = λ·v for both pairs.
	for k := 0; k < 2; k++ {
		v := matrix.Vector{vecs.At(0, k), vecs.At(1, k)}
		av, _ := a.MulVec(v)
		for i := range av {
			if math.Abs(av[i]-vals[k]*v[i]) > eigTol {
				t.Fatalf("eigenpair %d: Av=%v λv=%v", k, av, v.Clone().Scale(vals[k]))
			}
		}
	}
}

func TestEigenSymRejectsAsymmetric(t *testing.T) {
	a, _ := matrix.NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	if _, _, err := EigenSym(a, false); err == nil {
		t.Fatal("expected error for asymmetric input")
	}
}

func TestEigenSymEmptyAndSingleton(t *testing.T) {
	vals, err := EigenvaluesSym(matrix.NewDense(0, 0))
	if err != nil || len(vals) != 0 {
		t.Fatalf("empty: vals=%v err=%v", vals, err)
	}
	one, _ := matrix.NewDenseFrom([][]float64{{7}})
	vals, err = EigenvaluesSym(one)
	if err != nil || len(vals) != 1 || math.Abs(vals[0]-7) > eigTol {
		t.Fatalf("singleton: vals=%v err=%v", vals, err)
	}
}

func TestEigenSymMatchesPathSpectrum(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8, 17} {
		g := graph.Path(n)
		vals, err := EigenvaluesSym(g.Laplacian())
		if err != nil {
			t.Fatal(err)
		}
		want := graph.PathSpectrum(n)
		for i := range want {
			if math.Abs(vals[i]-want[i]) > eigTol {
				t.Fatalf("path(%d) eigenvalue %d: got %v want %v", n, i, vals[i], want[i])
			}
		}
	}
}

func TestEigenSymMatchesCycleSpectrum(t *testing.T) {
	for _, n := range []int{3, 4, 7, 12} {
		g := graph.Cycle(n)
		vals, err := EigenvaluesSym(g.Laplacian())
		if err != nil {
			t.Fatal(err)
		}
		want := graph.CycleSpectrum(n)
		for i := range want {
			if math.Abs(vals[i]-want[i]) > eigTol {
				t.Fatalf("cycle(%d) eigenvalue %d: got %v want %v", n, i, vals[i], want[i])
			}
		}
	}
}

func TestEigenSymMatchesHypercubeSpectrum(t *testing.T) {
	for _, d := range []int{1, 2, 3, 4} {
		g := graph.Hypercube(d)
		vals, err := EigenvaluesSym(g.Laplacian())
		if err != nil {
			t.Fatal(err)
		}
		want := graph.HypercubeSpectrum(d)
		for i := range want {
			if math.Abs(vals[i]-want[i]) > eigTol {
				t.Fatalf("hypercube(%d) eigenvalue %d: got %v want %v", d, i, vals[i], want[i])
			}
		}
	}
}

func TestJacobiMatchesQL(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(12)
		a := randomSymmetric(rng, n)
		ql, err := EigenvaluesSym(a)
		if err != nil {
			t.Fatal(err)
		}
		jac, err := JacobiEigen(a)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ql {
			if math.Abs(ql[i]-jac[i]) > 1e-7*(1+math.Abs(ql[i])) {
				t.Fatalf("trial %d eigenvalue %d: QL %v vs Jacobi %v", trial, i, ql[i], jac[i])
			}
		}
	}
}

func TestLambda2ClosedForms(t *testing.T) {
	cases := []struct {
		g    *graph.G
		want float64
	}{
		{graph.Path(10), graph.PathLambda2(10)},
		{graph.Cycle(10), graph.CycleLambda2(10)},
		{graph.Complete(9), graph.CompleteLambda2(9)},
		{graph.Star(9), graph.StarLambda2(9)},
		{graph.Hypercube(4), 2},
		{graph.Torus(4, 5), graph.TorusLambda2(4, 5)},
		{graph.Grid(3, 6), graph.GridLambda2(3, 6)},
		{graph.CompleteBipartite(3, 5), 3},
		{graph.Petersen(), 2},
	}
	for _, c := range cases {
		got, err := Lambda2(c.g)
		if err != nil {
			t.Fatalf("%s: %v", c.g.Name(), err)
		}
		if math.Abs(got-c.want) > 1e-7 {
			t.Fatalf("%s: λ₂ = %v, want %v", c.g.Name(), got, c.want)
		}
	}
}

func TestLambda2Disconnected(t *testing.T) {
	b := graph.NewBuilder("two-edges", 4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.MustFinish()
	got, err := Lambda2(g)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("disconnected λ₂ = %v, want 0", got)
	}
}

func TestLambda2TooSmall(t *testing.T) {
	b := graph.NewBuilder("single", 1)
	if _, err := Lambda2(b.MustFinish()); err == nil {
		t.Fatal("expected error for n=1")
	}
}

func TestLambda2LanczosMatchesDense(t *testing.T) {
	cases := []*graph.G{
		graph.Path(60),
		graph.Cycle(80),
		graph.Torus(6, 7),
		graph.Hypercube(6),
		graph.Barbell(10),
	}
	for _, g := range cases {
		dense, err := Lambda2(g)
		if err != nil {
			t.Fatal(err)
		}
		lan, err := Lambda2Lanczos(g, 42)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(dense-lan) > 1e-6*(1+dense) {
			t.Fatalf("%s: dense λ₂ %v vs Lanczos %v", g.Name(), dense, lan)
		}
	}
}

func TestLambda2LanczosLargeCycle(t *testing.T) {
	// Above the dense cutoff; compare against the closed form.
	n := 600
	got, err := Lambda2(graph.Cycle(n))
	if err != nil {
		t.Fatal(err)
	}
	want := graph.CycleLambda2(n)
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("cycle(%d): λ₂ = %v, want %v", n, got, want)
	}
}

func TestLaplacianApplyMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := graph.Torus(5, 5)
	l := g.Laplacian()
	x := make(matrix.Vector, g.N())
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want, _ := l.MulVec(x)
	got := make(matrix.Vector, g.N())
	LaplacianApply(g, got, x)
	if !got.ApproxEqual(want, 1e-10) {
		t.Fatal("sparse Laplacian apply disagrees with dense")
	}
}

func TestDiffusionMatrixProperties(t *testing.T) {
	for _, g := range []*graph.G{graph.Cycle(8), graph.Hypercube(3), graph.Star(6)} {
		m := DiffusionMatrix(g)
		if !m.IsSymmetric(1e-12) {
			t.Fatalf("%s: diffusion matrix not symmetric", g.Name())
		}
		for i, s := range m.RowSums() {
			if math.Abs(s-1) > 1e-12 {
				t.Fatalf("%s: row %d sums to %v", g.Name(), i, s)
			}
		}
		// All entries nonneg (α = 1/(δ+1) keeps diagonals ≥ 1/(δ+1) > 0).
		for i := 0; i < g.N(); i++ {
			for j := 0; j < g.N(); j++ {
				if m.At(i, j) < -1e-15 {
					t.Fatalf("%s: negative entry m[%d][%d] = %v", g.Name(), i, j, m.At(i, j))
				}
			}
		}
	}
}

func TestPaperDiffusionMatrixProperties(t *testing.T) {
	for _, g := range []*graph.G{graph.Path(7), graph.Torus(3, 4), graph.Star(9)} {
		m := PaperDiffusionMatrix(g)
		if !m.IsSymmetric(1e-12) {
			t.Fatalf("%s: paper diffusion matrix not symmetric", g.Name())
		}
		for i, s := range m.RowSums() {
			if math.Abs(s-1) > 1e-12 {
				t.Fatalf("%s: row %d sums to %v", g.Name(), i, s)
			}
		}
		// Diagonal ≥ 1 − d/(4·d) = 3/4 > 0: the rule is strongly lazy.
		for i := 0; i < g.N(); i++ {
			if m.At(i, i) < 0.75-1e-12 {
				t.Fatalf("%s: diagonal m[%d][%d] = %v < 3/4", g.Name(), i, i, m.At(i, i))
			}
		}
	}
}

func TestGammaCompleteGraph(t *testing.T) {
	// K_n with α = 1/n: M = (1/n)·J, eigenvalues {1, 0, …}; γ = 0.
	g := graph.Complete(6)
	gamma, err := Gamma(DiffusionMatrix(g))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gamma) > 1e-9 {
		t.Fatalf("γ(K₆) = %v, want 0", gamma)
	}
}

func TestGammaCycleClosedForm(t *testing.T) {
	// Cycle with α = 1/3: eigenvalues 1 − (2/3)(1−cos(2πk/n)).
	n := 12
	g := graph.Cycle(n)
	gamma, err := Gamma(DiffusionMatrix(g))
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - (2.0/3.0)*(1-math.Cos(2*math.Pi/float64(n)))
	if math.Abs(gamma-want) > 1e-9 {
		t.Fatalf("γ = %v, want %v", gamma, want)
	}
}

func TestEigenGap(t *testing.T) {
	g := graph.Complete(5)
	mu, err := EigenGap(DiffusionMatrix(g))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mu-1) > 1e-9 {
		t.Fatalf("µ(K₅) = %v, want 1", mu)
	}
}

func TestPowerIterationTop(t *testing.T) {
	a, _ := matrix.NewDenseFrom([][]float64{{2, 0}, {0, -5}})
	val, _ := PowerIterationTop(a, matrix.Vector{1, 1}, 200, nil)
	if math.Abs(val-(-5)) > 1e-6 {
		t.Fatalf("dominant eigenvalue = %v, want -5", val)
	}
	// Deflating the dominant direction exposes the next one.
	val2, _ := PowerIterationTop(a, matrix.Vector{1, 1}, 200, []matrix.Vector{{0, 1}})
	if math.Abs(val2-2) > 1e-6 {
		t.Fatalf("deflated eigenvalue = %v, want 2", val2)
	}
}

func TestAnalyzeReport(t *testing.T) {
	g := graph.Torus(4, 4)
	r, err := Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	if r.N != 16 || r.Delta != 4 {
		t.Fatalf("report basics wrong: %+v", r)
	}
	if math.Abs(r.Lambda2-graph.TorusLambda2(4, 4)) > 1e-7 {
		t.Fatalf("λ₂ = %v", r.Lambda2)
	}
	if !r.Exact || math.IsNaN(r.Gamma) {
		t.Fatalf("dense path should fill γ: %+v", r)
	}
	if r.ExpansionLo > r.ExpansionHi {
		t.Fatal("Cheeger bounds inverted")
	}
}

// Property: eigenvalue sum equals trace for random symmetric matrices.
func TestEigenvalueSumEqualsTraceProperty(t *testing.T) {
	f := func(seed uint8) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		n := 2 + r.Intn(10)
		a := randomSymmetric(r, n)
		vals, err := EigenvaluesSym(a)
		if err != nil {
			return false
		}
		var sum, tr float64
		for i := 0; i < n; i++ {
			sum += vals[i]
			tr += a.At(i, i)
		}
		return math.Abs(sum-tr) < 1e-7*(1+math.Abs(tr))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Laplacian eigenvalues are nonnegative with smallest ≈ 0.
func TestLaplacianPSDProperty(t *testing.T) {
	f := func(seed uint8) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		n := 3 + r.Intn(10)
		g := graph.ErdosRenyi(n, 0.5, r)
		vals, err := EigenvaluesSym(g.Laplacian())
		if err != nil {
			return false
		}
		if math.Abs(vals[0]) > 1e-8 {
			return false
		}
		for _, v := range vals {
			if v < -1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func randomSymmetric(rng *rand.Rand, n int) *matrix.Dense {
	a := matrix.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	return a
}
