package batch

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/topoparse"
	"repro/internal/workload"
)

// ForEach runs body(i, rng) for every i in [0, n) across at most workers
// goroutines (GOMAXPROCS when ≤ 0), handing indices out dynamically so
// wildly uneven unit costs cannot idle the pool. Each index gets its own
// deterministic RNG stream derived from seed, so results are identical for
// any worker count. A body that panics is captured as that index's error; a
// context cancellation marks every not-yet-started index with ctx.Err().
// Either way the remaining units keep the pool draining — one bad unit
// never wedges the run. The returned slice has one entry per index (nil on
// success).
func ForEach(ctx context.Context, n, workers int, seed int64, body func(i int, rng *rand.Rand) error) []error {
	return forEach(ctx, n, workers, func(i int) error {
		return body(i, rand.New(rand.NewSource(parallel.DeriveSeed(seed, i))))
	})
}

// forEach is ForEach without the per-index RNG, for callers (the grid
// runner) that derive their own streams and should not pay for an unused
// generator per unit.
func forEach(ctx context.Context, n, workers int, body func(i int) error) []error {
	errs := make([]error, n)
	parallel.ForDynamic(n, workers, func(i int) {
		if ctx != nil && ctx.Err() != nil {
			errs[i] = ctx.Err()
			return
		}
		defer func() {
			if r := recover(); r != nil {
				errs[i] = fmt.Errorf("batch: unit %d panicked: %v", i, r)
			}
		}()
		errs[i] = body(i)
	})
	return errs
}

// Outcome is what a RunFunc reports for one completed unit.
type Outcome struct {
	// Rounds executed and whether the convergence target was reached.
	Rounds    int  `json:"rounds"`
	Converged bool `json:"converged"`
	// PhiStart and PhiEnd bracket the potential trajectory.
	PhiStart float64 `json:"phi_start"`
	PhiEnd   float64 `json:"phi_end"`
	// Bound is the paper's round bound for this configuration (0 when no
	// theorem applies) and BoundName the theorem behind it.
	Bound     float64 `json:"bound,omitempty"`
	BoundName string  `json:"bound_name,omitempty"`
}

// RunFunc executes one run unit on graph g from the given initial loads.
// algoSeed drives the unit's randomized algorithm components; it is derived
// from the unit key, so implementations must use it (not global state) to
// stay deterministic under parallel scheduling.
type RunFunc func(u Unit, g *graph.G, loads []float64, algoSeed int64) (Outcome, error)

// Run expands spec and executes every unit through run on the worker pool.
// The only overall errors are spec-level (bad grid, unbuildable topology);
// per-unit failures and panics land in the matching cell's Err field so the
// rest of the sweep still completes.
func Run(spec Spec, run RunFunc) (*Report, error) {
	return RunContext(context.Background(), spec, run)
}

// RunContext is Run with cancellation: units not yet started when ctx fires
// record ctx.Err() and the already-running ones finish normally.
func RunContext(ctx context.Context, spec Spec, run RunFunc) (*Report, error) {
	spec = spec.withDefaults()
	units, err := Expand(spec)
	if err != nil {
		return nil, err
	}

	// Topologies are built once, serially, so randomized families (rgg,
	// smallworld, random-regular) are reproducible regardless of pool
	// scheduling and every unit of a topology sees the same instance.
	graphs := make(map[string]*graph.G)
	for _, u := range units {
		if _, ok := graphs[u.Topology]; ok {
			continue
		}
		g, err := topoparse.Build(u.Topology, spec.N, topologySeed(u.Topology))
		if err != nil {
			return nil, fmt.Errorf("batch: %w", err)
		}
		graphs[u.Topology] = g
	}

	start := time.Now()
	cells := make([]Cell, len(units))
	errs := forEach(ctx, len(units), spec.Workers, func(i int) error {
		u := units[i]
		g := graphs[u.Topology]
		// Both streams hang off the unit key, not the grid position, so a
		// cell's numbers survive the grid growing around it.
		base := u.seedBase()
		loads := workload.Continuous(u.Workload, g.N(),
			spec.Scale, rand.New(rand.NewSource(parallel.DeriveSeed(base, 0))))
		algoSeed := parallel.DeriveSeed(base, 1)

		unitStart := time.Now()
		out, err := run(u, g, loads, algoSeed)
		cells[i] = Cell{Unit: u, Outcome: out, Wall: time.Since(unitStart)}
		if err != nil {
			return err
		}
		cells[i].finish(g.N())
		return nil
	})
	// Units that were cancelled or panicked never wrote their cell; stamp
	// the identity and error in so the report stays self-describing.
	for i, err := range errs {
		if err != nil {
			cells[i].Unit = units[i]
			cells[i].Err = err.Error()
		}
	}

	rep := &Report{
		Spec:    spec,
		Cells:   cells,
		Elapsed: time.Since(start),
	}
	rep.aggregate()
	return rep, nil
}

// topologySeed derives the deterministic construction seed for a randomized
// topology family from the topology name alone — never from the sweep's
// seed list — so the instance behind a unit Key is stable no matter how the
// grid grows around it (the Key-as-cache-identity invariant).
func topologySeed(name string) int64 {
	h := int64(0)
	for _, c := range name {
		h = h*131 + int64(c)
	}
	return parallel.DeriveSeed(h, 0)
}

// boundRatio is rounds/bound, or 0 when no bound applies (kept NaN-free so
// the report marshals to JSON).
func boundRatio(rounds int, bound float64) float64 {
	if bound <= 0 || math.IsNaN(bound) {
		return 0
	}
	return float64(rounds) / bound
}
