package dimexchange

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/workload"
)

func TestEdgeColoringProper(t *testing.T) {
	for _, g := range []*graph.G{graph.Cycle(9), graph.Torus(4, 4), graph.Complete(7), graph.Star(10), graph.Petersen()} {
		colors, num := graph.EdgeColoring(g)
		if num > 2*g.MaxDegree()-1 && g.M() > 0 {
			t.Fatalf("%s: %d colors exceeds 2δ−1 = %d", g.Name(), num, 2*g.MaxDegree()-1)
		}
		// No two edges at a node share a color.
		at := make(map[[2]int]bool)
		for k, e := range g.Edges() {
			for _, v := range []int{e.U, e.V} {
				key := [2]int{v, colors[k]}
				if at[key] {
					t.Fatalf("%s: node %d has two color-%d edges", g.Name(), v, colors[k])
				}
				at[key] = true
			}
		}
	}
}

func TestColorClassesAreMatchings(t *testing.T) {
	g := graph.Torus(4, 5)
	colors, num := graph.EdgeColoring(g)
	for _, class := range graph.ColorClasses(g, colors, num) {
		if !IsMatching(g, class) {
			t.Fatal("color class is not a matching")
		}
	}
}

func TestHypercubeDimensionClasses(t *testing.T) {
	d := 4
	classes := graph.HypercubeDimensionClasses(d)
	if len(classes) != d {
		t.Fatalf("%d classes, want %d", len(classes), d)
	}
	g := graph.Hypercube(d)
	total := 0
	for _, class := range classes {
		if !IsMatching(g, class) {
			t.Fatal("dimension class is not a matching")
		}
		if len(class) != g.N()/2 {
			t.Fatalf("dimension class has %d edges, want %d (perfect matching)", len(class), g.N()/2)
		}
		total += len(class)
	}
	if total != g.M() {
		t.Fatalf("classes cover %d edges, graph has %d", total, g.M())
	}
}

func TestHypercubeSweepBalancesPerfectly(t *testing.T) {
	// The classic [3] result: one sweep of all d dimensions balances any
	// continuous distribution on the hypercube exactly.
	d := 5
	g := graph.Hypercube(d)
	rng := rand.New(rand.NewSource(1))
	init := workload.Continuous(workload.Uniform, g.N(), 1000, rng)
	rr := NewRoundRobinWithClasses(g, init, graph.HypercubeDimensionClasses(d))
	for k := 0; k < d; k++ {
		rr.Step()
	}
	if phi := rr.Potential(); phi > 1e-15*1e6 {
		t.Fatalf("Φ = %v after one full dimension sweep, want 0", phi)
	}
}

func TestRoundRobinConservesAndConverges(t *testing.T) {
	g := graph.Torus(4, 4)
	init := workload.Continuous(workload.Spike, g.N(), 1e6, nil)
	rr := NewRoundRobin(g, init)
	before := rr.Load.Total()
	phi0 := rr.Potential()
	for k := 0; k < 500; k++ {
		rr.Step()
	}
	if math.Abs(rr.Load.Total()-before) > 1e-8*(1+before) {
		t.Fatal("round robin must conserve")
	}
	if rr.Potential() > 1e-9*phi0 {
		t.Fatalf("Φ %v after 500 rounds", rr.Potential())
	}
}

func TestRoundRobinDeterministic(t *testing.T) {
	g := graph.Cycle(10)
	init := workload.Continuous(workload.Spike, g.N(), 100, nil)
	a := NewRoundRobin(g, init)
	b := NewRoundRobin(g, init)
	for k := 0; k < 30; k++ {
		a.Step()
		b.Step()
	}
	if !a.Load.Vector().ApproxEqual(b.Load.Vector(), 0) {
		t.Fatal("deterministic schedule must reproduce exactly")
	}
}

func TestRoundRobinDiscreteConserves(t *testing.T) {
	g := graph.Hypercube(4)
	rng := rand.New(rand.NewSource(2))
	init := workload.Discrete(workload.PowerLaw, g.N(), 500_000, rng)
	rr := NewRoundRobinDiscrete(g, init)
	before := rr.Load.Total()
	for k := 0; k < 300; k++ {
		rr.Step()
		for node, v := range rr.Load.Tokens() {
			if v < 0 {
				t.Fatalf("node %d negative", node)
			}
		}
	}
	if rr.Load.Total() != before {
		t.Fatal("tokens not conserved")
	}
}

func TestRoundRobinDiscreteReachesSmallResidual(t *testing.T) {
	g := graph.Hypercube(4)
	init := workload.Discrete(workload.Spike, g.N(), 1_600_000, nil)
	rr := NewRoundRobinDiscrete(g, init)
	for k := 0; k < 2000; k++ {
		rr.Step()
	}
	// Discrete pairwise averaging on the hypercube gets within a few
	// tokens per node of perfect balance.
	if k := rr.Load.Discrepancy(); k > int64(g.MaxDegree())+1 {
		t.Fatalf("discrepancy %d", k)
	}
}

func TestRoundRobinFasterThanRandomMatchingOnHypercube(t *testing.T) {
	// The deterministic sweep uses every edge exactly once per d rounds;
	// random matchings activate each edge only with probability ~1/δ² per
	// round, so at equal round counts the deterministic schedule must be
	// far ahead on the hypercube.
	g := graph.Hypercube(5)
	init := workload.Continuous(workload.Spike, g.N(), 1e6, nil)
	rr := NewRoundRobinWithClasses(g, init, graph.HypercubeDimensionClasses(5))
	rm := NewContinuous(g, init, rand.New(rand.NewSource(3)))
	for k := 0; k < 10; k++ {
		rr.Step()
		rm.Step()
	}
	if rr.Potential() >= rm.Potential() {
		t.Fatalf("round robin (Φ=%v) not ahead of random matching (Φ=%v)", rr.Potential(), rm.Potential())
	}
}
