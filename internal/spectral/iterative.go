package spectral

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/matrix"
)

// LaplacianApply computes dst ← L·x for the Laplacian of g without
// materializing the dense matrix: (Lx)ᵢ = deg(i)·xᵢ − Σ_{j∼i} xⱼ.
// This is the workhorse of the Lanczos path on large graphs.
func LaplacianApply(g *graph.G, dst, x matrix.Vector) {
	n := g.N()
	if len(dst) != n || len(x) != n {
		panic("spectral: LaplacianApply dimension mismatch")
	}
	off, tgt := g.CSR()
	for i := 0; i < n; i++ {
		row := tgt[off[i]:off[i+1]]
		s := float64(len(row)) * x[i]
		for _, j := range row {
			s -= x[j]
		}
		dst[i] = s
	}
}

// lanczosSteps bounds the Krylov dimension. Full reorthogonalization keeps
// the basis numerically orthogonal, so a modest dimension recovers extremal
// Ritz values to far better accuracy than the diffusion experiments need.
const lanczosSteps = 220

// Lambda2Lanczos estimates λ₂ of the Laplacian of g, the smallest
// eigenvalue of L restricted to the complement of the all-ones kernel. It
// runs Lanczos on the shifted operator B = cI − L (c > λ_max, so the
// smallest eigenvalue of L becomes the largest of B), projecting the ones
// direction out of every Krylov vector, and reads λ₂ = c − θ_max off the
// top Ritz value. g must be connected.
func Lambda2Lanczos(g *graph.G, seed int64) (float64, error) {
	n := g.N()
	if n < 2 {
		return 0, fmt.Errorf("spectral: λ₂ undefined for n=%d", n)
	}
	if !g.IsConnected() {
		return 0, fmt.Errorf("spectral: graph %s is disconnected (λ₂ = 0)", g.Name())
	}
	c := 2*float64(g.MaxDegree()) + 1 // ≥ λ_max(L) + 1 by Gershgorin

	steps := lanczosSteps
	if steps > n-1 {
		steps = n - 1
	}

	// Deterministic pseudo-random start orthogonal to ones.
	v := make(matrix.Vector, n)
	s := uint64(seed)*2862933555777941757 + 3037000493
	for i := range v {
		s = s*6364136223846793005 + 1442695040888963407
		v[i] = float64(int64(s>>11))/float64(1<<52) - 0.5
	}
	ones := make(matrix.Vector, n).Fill(1)
	v.ProjectOut(ones)
	if v.Normalize() == 0 {
		return 0, fmt.Errorf("spectral: degenerate Lanczos start")
	}

	basis := make([]matrix.Vector, 0, steps)
	alpha := make([]float64, 0, steps)
	beta := make([]float64, 0, steps) // beta[k] couples basis[k] and basis[k+1]
	w := make(matrix.Vector, n)

	for k := 0; k < steps; k++ {
		basis = append(basis, v.Clone())
		// w ← B·v = c·v − L·v
		LaplacianApply(g, w, v)
		for i := range w {
			w[i] = c*v[i] - w[i]
		}
		a := w.Dot(v)
		alpha = append(alpha, a)
		w.AddScaled(-a, v)
		if k > 0 {
			w.AddScaled(-beta[k-1], basis[k-1])
		}
		// Full reorthogonalization against the kernel and the whole basis.
		w.ProjectOut(ones)
		for _, b := range basis {
			w.AddScaled(-w.Dot(b), b)
		}
		bNorm := w.Norm2()
		if bNorm < 1e-13 {
			break // Krylov space exhausted; Ritz values are exact
		}
		beta = append(beta, bNorm)
		copy(v, w)
		v.Scale(1 / bNorm)
	}

	m := len(alpha)
	t := Tridiagonal{D: append([]float64(nil), alpha...), E: make([]float64, m)}
	for k := 0; k+1 < m; k++ {
		t.E[k+1] = beta[k] // QLImplicit expects e[i] coupling rows i−1, i
	}
	if err := QLImplicit(t, nil); err != nil {
		return 0, err
	}
	thetaMax := math.Inf(-1)
	for _, th := range t.D {
		if th > thetaMax {
			thetaMax = th
		}
	}
	lambda2 := c - thetaMax
	if lambda2 < 0 && lambda2 > -1e-9 {
		lambda2 = 0
	}
	return lambda2, nil
}

// PowerIterationTop returns the dominant eigenvalue (largest |λ|) of the
// symmetric matrix a and its eigenvector estimate, via power iteration with
// Rayleigh-quotient readout. Used for γ estimation on diffusion matrices
// after deflating the known stationary eigenvector.
func PowerIterationTop(a *matrix.Dense, start matrix.Vector, iters int, deflate []matrix.Vector) (float64, matrix.Vector) {
	n := a.Rows()
	v := start.Clone()
	for _, d := range deflate {
		v.ProjectOut(d)
	}
	if v.Normalize() == 0 {
		panic("spectral: power iteration start lies in deflated space")
	}
	w := make(matrix.Vector, n)
	var rq float64
	for k := 0; k < iters; k++ {
		a.MulVecTo(w, v)
		for _, d := range deflate {
			w.ProjectOut(d)
		}
		rq = w.Dot(v)
		if w.Normalize() == 0 {
			return 0, v
		}
		v, w = w, v
	}
	return rq, v
}
