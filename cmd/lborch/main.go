// Command lborch is the standalone shard orchestrator: one command that
// plans an m-way shard split of a sweep grid, spawns m lbbench shard
// subprocesses sharing one LB_SPECCACHE_DIR, tails their journals for
// shard-aware live progress, restarts dead shards from their own journals
// (capped retries, loudly reported), and merges the finished journals into
// a final report byte-identical to a single-process sweep:
//
//	lborch -m 3 -out sweep/ -topos cycle,torus -n 256 -seeds 1,2,3
//
// It is a thin wrapper over internal/orchestrator — the same machinery
// lbbench -spawn uses — for operators who keep the orchestrator and the
// benchmark binary separate (e.g. the orchestrator on a head node, lbbench
// on PATH). -emit-matrix {github|slurm|shell} serializes the plan instead
// of running it, so the exact local split is what CI and clusters execute:
//
//	lborch -m 16 -emit-matrix slurm -topos torus -n 4096 -seeds 1,2,3
//
// The lbbench binary is located via -lbbench, next to lborch itself, or on
// PATH, in that order. Exit codes match lbbench: 0 success; 1 failed units
// or failed shards; 2 usage errors; 3 interrupted (re-run to resume); 5 bad
// shard count.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/orchestrator"
	"repro/internal/signals"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		m          = flag.Int("m", 0, "shard count: how many lbbench subprocesses to spawn (required)")
		out        = flag.String("out", "sweep", "directory for the per-shard journals and stderr logs")
		emitMatrix = flag.String("emit-matrix", "", "print the shard plan as a CI/cluster fan-out (github, slurm, shell) instead of running it")
		lbbench    = flag.String("lbbench", "", "path to the lbbench binary (default: next to lborch, then $PATH)")
		retries    = flag.Int("retries", 3, "max restarts per dead shard before giving up")
		interval   = flag.Duration("progress", time.Second, "journal poll period for the progress display")
		stall      = flag.Duration("stall-after", time.Minute, "warn when a running shard's journal is unchanged this long")

		topos     = flag.String("topos", "cycle,torus,hypercube", "comma-separated topology names")
		algos     = flag.String("algos", "diffusion,dimexchange,randpair", "comma-separated algorithm names")
		modes     = flag.String("modes", "continuous", "comma-separated load modes (continuous,discrete)")
		loads     = flag.String("loads", "spike,uniform", "comma-separated workload kinds")
		scenarios = flag.String("scenarios", "static", "comma-separated scenarios (time-varying arrivals / adversarial spikes / topology churn)")
		n         = flag.Int("n", 64, "approximate node count per topology")
		seeds     = flag.String("seeds", "1", "comma-separated repetition seeds")
		scale     = flag.Float64("scale", 1e6, "load magnitude")
		eps       = flag.Float64("eps", 1e-3, "convergence target Φ ≤ ε·Φ⁰")
		rounds    = flag.Int("rounds", 0, "round cap per unit (0 = theorem-derived default)")
		parallel  = flag.Int("parallel", 0, "worker-pool width inside each shard subprocess (0 = GOMAXPROCS)")
		roundWkrs = flag.String("round-workers", "1", "round-level workers inside every stepper, per shard subprocess: a count, or 'auto' to split GOMAXPROCS from the grid shape")

		format    = flag.String("format", "table", "final report format (table, csv, json)")
		streamAgg = flag.Bool("stream-agg", false, "render streaming-only aggregates+marginals instead of the per-cell report")
	)
	flag.Parse()

	if *m <= 0 {
		fmt.Fprintln(os.Stderr, "lborch: -m is required: how many shard subprocesses to spawn")
		return 5
	}
	switch *format {
	case "table", "csv", "json":
	default:
		fmt.Fprintf(os.Stderr, "lborch: unknown -format %q (want table, csv or json)\n", *format)
		return 2
	}

	var seedList []int64
	for _, s := range splitList(*seeds) {
		x, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lborch: bad seed %q: %v\n", s, err)
			return 2
		}
		seedList = append(seedList, x)
	}
	rw := 0
	if strings.EqualFold(strings.TrimSpace(*roundWkrs), "auto") {
		rw = -1
	} else if v, err := strconv.Atoi(strings.TrimSpace(*roundWkrs)); err == nil && v >= 0 {
		rw = v
	} else {
		fmt.Fprintf(os.Stderr, "lborch: bad -round-workers %q (want a non-negative count, or 'auto')\n", *roundWkrs)
		return 2
	}
	spec := batch.Spec{
		Topologies:   splitList(*topos),
		Algorithms:   splitList(*algos),
		Modes:        splitList(*modes),
		Workloads:    splitList(*loads),
		Scenarios:    splitList(*scenarios),
		Seeds:        seedList,
		N:            *n,
		Scale:        *scale,
		Epsilon:      *eps,
		MaxRounds:    *rounds,
		Workers:      *parallel,
		RoundWorkers: rw,
	}
	plan, err := orchestrator.NewPlan(spec, *m, *out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lborch: %v\n", err)
		return 2
	}
	plan.Format = *format
	if err := core.ValidateGridSpec(plan.Spec); err != nil {
		fmt.Fprintf(os.Stderr, "lborch: %v\n", err)
		return 2
	}

	if *emitMatrix != "" {
		if err := plan.Emit(*emitMatrix, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "lborch: %v\n", err)
			return 2
		}
		return 0
	}

	bin, err := findLbbench(*lbbench)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lborch: %v\n", err)
		return 2
	}

	ctx, stop := signals.Graceful(context.Background())
	defer stop()
	sup := &orchestrator.Supervisor{
		Plan:       plan,
		Command:    []string{bin},
		MaxRetries: *retries,
		Log:        os.Stderr,
		Interval:   *interval,
		StallAfter: *stall,
	}
	code := sup.RunAndReport(ctx, *streamAgg, os.Stdout)
	if code == 3 {
		fmt.Fprintln(os.Stderr, "lborch: interrupted — re-run the same command to resume every shard")
	}
	return code
}

// findLbbench resolves the shard binary: an explicit -lbbench path, the
// lbbench next to lborch itself (the `go build ./...` layout), then $PATH.
func findLbbench(explicit string) (string, error) {
	if explicit != "" {
		if _, err := os.Stat(explicit); err != nil {
			return "", fmt.Errorf("lbbench binary %s: %w", explicit, err)
		}
		return explicit, nil
	}
	if self, err := os.Executable(); err == nil {
		sibling := filepath.Join(filepath.Dir(self), "lbbench")
		if _, err := os.Stat(sibling); err == nil {
			return sibling, nil
		}
	}
	if path, err := exec.LookPath("lbbench"); err == nil {
		return path, nil
	}
	return "", fmt.Errorf("cannot find lbbench (tried -lbbench, next to lborch, $PATH) — build it with `go build -o DIR ./cmd/lbbench`")
}

// splitList splits a comma-separated flag value, dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}
