package batch_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/batch"
	"repro/internal/graph"
)

// TestJSONLSinkStreamsInExpansionOrder runs a wide pool against a JSONL sink
// and checks the journal holds exactly one line per unit, in expansion
// order, regardless of completion order.
func TestJSONLSinkStreamsInExpansionOrder(t *testing.T) {
	spec := okSpec()
	spec.Workers = 8
	var buf bytes.Buffer
	rep, err := batch.RunSink(context.Background(), spec, fakeRun, batch.NewJSONLSink(&buf))
	if err != nil {
		t.Fatal(err)
	}
	j, err := batch.ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil || j.Dropped != 0 {
		t.Fatalf("ReadJournal: dropped=%d err=%v", j.Dropped, err)
	}
	if len(j.Specs) != 1 || j.Specs[0].N != spec.N {
		t.Fatalf("journal header lost the spec: %+v", j.Specs)
	}
	cells := j.Cells
	if len(cells) != len(rep.Cells) {
		t.Fatalf("journal has %d cells, report has %d", len(cells), len(rep.Cells))
	}
	for i, c := range cells {
		if c.Index != i {
			t.Fatalf("journal line %d carries unit index %d — not expansion order", i, c.Index)
		}
		if c.Key() != rep.Cells[i].Key() {
			t.Fatalf("journal line %d is %s, report cell is %s", i, c.Key(), rep.Cells[i].Key())
		}
		if c.Rounds != rep.Cells[i].Rounds || c.PhiEnd != rep.Cells[i].PhiEnd {
			t.Fatalf("journal outcome for %s differs from report", c.Key())
		}
	}
}

// TestJSONLJournalBytesDeterministicAcrossWorkers asserts the streamed
// journal — not just the final report — is byte-identical for any pool
// width, which is what the sequencing layer exists for.
func TestJSONLJournalBytesDeterministicAcrossWorkers(t *testing.T) {
	journal := func(workers int) []byte {
		spec := okSpec()
		spec.Workers = workers
		var buf bytes.Buffer
		if _, err := batch.RunSink(context.Background(), spec, fakeRun, batch.NewJSONLSink(&buf)); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	j1 := journal(1)
	for _, w := range []int{2, 8} {
		if !bytes.Equal(j1, journal(w)) {
			t.Fatalf("journal bytes differ between workers=1 and workers=%d", w)
		}
	}
	if len(j1) == 0 {
		t.Fatal("empty journal")
	}
}

// TestMemorySinkMatchesReport checks the sink path observes exactly the
// cells the report records, and that MemorySink.Report aggregates them the
// same way.
func TestMemorySinkMatchesReport(t *testing.T) {
	spec := okSpec()
	spec.Workers = 4
	mem := batch.NewMemorySink()
	rep, err := batch.RunSink(context.Background(), spec, fakeRun, mem)
	if err != nil {
		t.Fatal(err)
	}
	cells := mem.Cells()
	if len(cells) != len(rep.Cells) {
		t.Fatalf("sink saw %d cells, report has %d", len(cells), len(rep.Cells))
	}
	var fromSink, fromRun bytes.Buffer
	if err := mem.Report(spec).RenderCSV(&fromSink); err != nil {
		t.Fatal(err)
	}
	if err := rep.RenderCSV(&fromRun); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fromSink.Bytes(), fromRun.Bytes()) {
		t.Fatal("MemorySink.Report renders differently from the engine's report")
	}
}

// TestMultiSinkFansOut delivers to a memory sink and a JSONL sink at once.
func TestMultiSinkFansOut(t *testing.T) {
	spec := okSpec()
	spec.Workers = 4
	mem := batch.NewMemorySink()
	var buf bytes.Buffer
	multi := batch.MultiSink{mem, batch.NewJSONLSink(&buf)}
	rep, err := batch.RunSink(context.Background(), spec, fakeRun, multi)
	if err != nil {
		t.Fatal(err)
	}
	if err := multi.Close(); err != nil {
		t.Fatal(err)
	}
	j, err := batch.ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(j.Specs) != 1 {
		t.Fatal("MultiSink did not forward the spec header to the JSONL member")
	}
	if len(mem.Cells()) != len(rep.Cells) || len(j.Cells) != len(rep.Cells) {
		t.Fatalf("fan-out incomplete: mem=%d jsonl=%d want=%d", len(mem.Cells()), len(j.Cells), len(rep.Cells))
	}
}

// failingSink errors after accepting `limit` cells.
type failingSink struct {
	seen  int
	limit int
}

func (f *failingSink) Cell(batch.Cell) error {
	f.seen++
	if f.seen > f.limit {
		return fmt.Errorf("disk full after %d cells", f.limit)
	}
	return nil
}

func (f *failingSink) Close() error { return nil }

// TestSinkErrorAbortsTheSweep checks a failing sink both reports its error
// and cancels the remaining units: with nothing durable being recorded,
// computing the rest of a large grid would be pure waste.
func TestSinkErrorAbortsTheSweep(t *testing.T) {
	spec := okSpec()
	spec.Workers = 4
	sink := &failingSink{limit: 5}
	rep, err := batch.RunSink(context.Background(), spec, fakeRun, sink)
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("sink error was swallowed: %v", err)
	}
	if rep == nil || len(rep.Cells) != 72 {
		t.Fatalf("partial report missing: %+v", rep)
	}
	if rep.Failed() == 0 {
		t.Fatal("sweep kept computing every unit after the sink died")
	}
	// The cells delivered before the failure are intact.
	for _, c := range rep.Cells[:5] {
		if c.Err != "" {
			t.Fatalf("pre-failure cell corrupted: %+v", c)
		}
	}
}

// TestSinkBackpressureBoundsJournalLag stalls unit 0 and checks the pool
// cannot run arbitrarily far ahead of the journal: without the sequencer's
// lookahead window, a single slow unit would let every other cell finish
// into the in-memory pending buffer with nothing journaled — exactly the
// cells a hard kill would lose.
func TestSinkBackpressureBoundsJournalLag(t *testing.T) {
	spec := okSpec() // 72 units
	spec.Workers = 2
	gate := make(chan struct{})
	var started atomic.Int64
	var buf bytes.Buffer

	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := batch.RunSink(context.Background(), spec, func(u batch.Unit, g *graph.G, loads []float64, algoSeed int64) (batch.Outcome, error) {
			if u.Index == 0 {
				<-gate
			} else {
				started.Add(1)
			}
			return fakeRun(u, g, loads, algoSeed)
		}, batch.NewJSONLSink(&buf))
		if err != nil {
			t.Error(err)
		}
	}()

	// Wait for the free worker to run as far ahead as the window allows,
	// i.e. until its progress stalls.
	prev := int64(-1)
	for i := 0; i < 200; i++ {
		cur := started.Load()
		if cur == prev && cur > 0 {
			break
		}
		prev = cur
		time.Sleep(5 * time.Millisecond)
	}
	ahead := started.Load()
	close(gate)
	<-done

	// Lookahead for workers=2 is 4·2+16 = 24: the free worker may start
	// units 1..23 while unit 0 stalls, but not the whole grid.
	if ahead >= 71 {
		t.Fatalf("pool ran all %d remaining units ahead of a stalled unit 0 — no backpressure", ahead)
	}
	if ahead == 0 {
		t.Fatal("free worker made no progress at all — window too tight or deadlocked")
	}
	j, err := batch.ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil || len(j.Cells) != 72 || j.Dropped != 0 {
		t.Fatalf("journal incomplete after release: cells=%d dropped=%d err=%v", len(j.Cells), j.Dropped, err)
	}
}

// syncWriter records whether Sync was called before Close — the durability
// contract a shard process relies on when it exits cleanly.
type syncWriter struct {
	bytes.Buffer
	synced           bool
	closed           bool
	syncedThenClosed bool
}

func (s *syncWriter) Sync() error { s.synced = true; return nil }
func (s *syncWriter) Close() error {
	s.closed = true
	s.syncedThenClosed = s.synced
	return nil
}

// TestJSONLSinkCloseSyncs: Close must fsync the journal before returning,
// so a shard that exits cleanly can never leave its final lines in the page
// cache for a machine crash to tear.
func TestJSONLSinkCloseSyncs(t *testing.T) {
	w := &syncWriter{}
	sink := batch.NewJSONLSink(w)
	if err := sink.Cell(batch.Cell{}); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if !w.synced {
		t.Fatal("Close returned without syncing the journal")
	}
	if w.closed {
		t.Fatal("Close closed a writer the sink does not own")
	}
}

// TestJSONLCellRoundTrip checks a cell's JSON line restores every field the
// resume path and the deterministic emitters depend on, bit-exactly.
func TestJSONLCellRoundTrip(t *testing.T) {
	spec := batch.Spec{
		Topologies: []string{"cycle"},
		Algorithms: []string{"diffusion"},
		Modes:      []string{"continuous"},
		Workloads:  []string{"spike"},
		N:          16,
	}
	rep, err := batch.Run(spec, func(u batch.Unit, g *graph.G, loads []float64, algoSeed int64) (batch.Outcome, error) {
		return batch.Outcome{
			Rounds: 17, Converged: true,
			PhiStart: 1.0 / 3.0, PhiEnd: 2.220446049250313e-16,
			Bound: 123.456789, BoundName: "Theorem 4",
		}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	line, err := json.Marshal(rep.Cells[0])
	if err != nil {
		t.Fatal(err)
	}
	var back batch.Cell
	if err := json.Unmarshal(line, &back); err != nil {
		t.Fatal(err)
	}
	orig := rep.Cells[0]
	if back.Key() != orig.Key() || back.Rounds != orig.Rounds || back.Converged != orig.Converged ||
		back.PhiStart != orig.PhiStart || back.PhiEnd != orig.PhiEnd ||
		back.Bound != orig.Bound || back.BoundName != orig.BoundName {
		t.Fatalf("round trip lost data:\n  orig %+v\n  back %+v", orig, back)
	}
}
