// Command lbbench regenerates the paper-reproduction experiment tables and
// runs declarative sweep grids through the parallel batch engine.
//
// Experiment mode (one table per experiment of DESIGN.md §5):
//
//	lbbench -exp all            # run every experiment (E1–E19, A1–A8)
//	lbbench -exp E3,E4          # run selected experiments
//	lbbench -exp E9 -seed 7     # change the seed
//	lbbench -list               # list experiment ids
//	lbbench -quick              # shrunk sweeps (CI-sized)
//	lbbench -csv                # CSV instead of aligned tables
//	lbbench -parallel 8         # fan each experiment's sweep over 8 workers
//
// Grid mode (one invocation reproduces a whole paper figure's sweep):
//
//	lbbench -grid -topos cycle,torus,hypercube \
//	        -algos diffusion,dimexchange,randpair \
//	        -modes continuous,discrete -loads spike,uniform \
//	        -n 64 -seeds 1,2,3 -parallel 8 -format csv
//
// The grid expands to topologies × algorithms × modes × workloads × seeds
// run units, executes them across -parallel workers with per-unit
// deterministic RNG streams, and emits one aggregated report (table, csv or
// json). Output is identical for any -parallel value.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		seed     = flag.Int64("seed", 1, "seed for randomized components (experiment mode)")
		quick    = flag.Bool("quick", false, "shrink sweeps for a fast run")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables (experiment mode)")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		parallel = flag.Int("parallel", 0, "worker-pool width for sweeps (0 = GOMAXPROCS)")

		grid   = flag.Bool("grid", false, "run a declarative sweep grid instead of the experiment tables")
		topos  = flag.String("topos", "cycle,torus,hypercube", "grid: comma-separated topology names")
		algos  = flag.String("algos", "diffusion,dimexchange,randpair", "grid: comma-separated algorithm names")
		modes  = flag.String("modes", "continuous", "grid: comma-separated load modes (continuous,discrete)")
		loads  = flag.String("loads", "spike,uniform", "grid: comma-separated workload kinds")
		n      = flag.Int("n", 64, "grid: approximate node count per topology")
		seeds  = flag.String("seeds", "1", "grid: comma-separated repetition seeds")
		scale  = flag.Float64("scale", 1e6, "grid: load magnitude")
		eps    = flag.Float64("eps", 1e-3, "grid: convergence target Φ ≤ ε·Φ⁰")
		rounds = flag.Int("rounds", 0, "grid: round cap per unit (0 = theorem-derived default)")
		format = flag.String("format", "table", "grid: output format (table, csv, json)")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if *grid {
		os.Exit(runGrid(*topos, *algos, *modes, *loads, *seeds, *n, *scale, *eps, *rounds, *parallel, *format))
	}
	os.Exit(runExperiments(*exp, *seed, *quick, *csv, *parallel))
}

// runExperiments is the classic per-experiment table mode.
func runExperiments(exp string, seed int64, quick, csv bool, workers int) int {
	var ids []string
	if exp == "all" {
		ids = experiments.IDs()
	} else {
		for _, id := range strings.Split(exp, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			if _, ok := experiments.Lookup(id); !ok {
				fmt.Fprintf(os.Stderr, "lbbench: unknown experiment %q (use -list)\n", id)
				return 2
			}
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "lbbench: no experiments selected")
		return 2
	}

	opts := experiments.Options{Seed: seed, Quick: quick, Workers: workers}
	for _, id := range ids {
		runner, _ := experiments.Lookup(id)
		start := time.Now()
		table := runner(opts)
		elapsed := time.Since(start)
		var err error
		if csv {
			err = table.RenderCSV(os.Stdout)
		} else {
			err = table.Render(os.Stdout)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "lbbench: rendering %s: %v\n", id, err)
			return 1
		}
		if !csv {
			fmt.Printf("[%s completed in %v]\n\n", id, elapsed.Round(time.Millisecond))
		}
	}
	return 0
}

// runGrid expands and executes one declarative sweep through the batch
// engine and emits the aggregated report.
func runGrid(topos, algos, modes, loads, seeds string, n int, scale, eps float64, rounds, workers int, format string) int {
	seedList, err := parseSeeds(seeds)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lbbench: %v\n", err)
		return 2
	}
	spec := batch.Spec{
		Topologies: splitList(topos),
		Algorithms: splitList(algos),
		Modes:      splitList(modes),
		Workloads:  splitList(loads),
		Seeds:      seedList,
		N:          n,
		Scale:      scale,
		Epsilon:    eps,
		MaxRounds:  rounds,
		Workers:    workers,
	}
	report, err := core.BalanceGrid(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lbbench: %v\n", err)
		return 2
	}

	switch format {
	case "table":
		err = report.Table().Render(os.Stdout)
		if err == nil {
			err = report.AggregateTable().Render(os.Stdout)
		}
	case "csv":
		err = report.RenderCSV(os.Stdout)
	case "json":
		err = report.RenderJSON(os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "lbbench: unknown -format %q (want table, csv or json)\n", format)
		return 2
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "lbbench: rendering grid report: %v\n", err)
		return 1
	}
	// Wall time goes to stderr so stdout stays deterministic across worker
	// counts (and across runs).
	fmt.Fprintf(os.Stderr, "lbbench: %d units (%d failed) in %v\n",
		len(report.Cells), report.Failed(), report.Elapsed.Round(time.Millisecond))
	// Any failed unit means the emitted figure has holes: scripts checking
	// the exit status must not mistake a partial sweep for a complete one.
	if report.Failed() > 0 {
		return 1
	}
	return 0
}

// splitList splits a comma-separated flag value, dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

// parseSeeds parses the -seeds list.
func parseSeeds(s string) ([]int64, error) {
	var out []int64
	for _, v := range splitList(s) {
		x, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q: %v", v, err)
		}
		out = append(out, x)
	}
	return out, nil
}
