// Command lbserved is the trace-driven service mode: a daemon that keeps
// one balancer instance hot, applies the paper's algorithms continuously
// round-by-round at a wall-clock cadence, ingests arrivals over HTTP and
// from recorded traces at a controllable speed-up, and exposes live
// observability:
//
//	POST /arrive         {"node":3,"amt":1200} or an array of such objects
//	GET  /metrics        backlog percentiles, rebalance latency, per-node
//	                     queue depth, rounds/sec, Φ trajectory summary (JSON)
//	GET  /metrics/prom   the same counters in Prometheus text exposition
//	GET  /debug/pprof/   live profiling (goroutine, heap, 30s CPU profile)
//	GET  /healthz        liveness + current round
//
// All endpoints share the -addr listener; -telemetry binds /metrics/prom and
// /debug/pprof/* on a second (typically loopback-only) address as well, so
// ingest and observability can sit behind different firewalls.
//
// Replay a captured trace at 100× real time, re-recording what lands:
//
//	lbserved -topo torus -n 64 -replay trace.jsonl -speedup 100x \
//	         -record replayed.jsonl -addr :8080
//
// On SIGINT/SIGTERM the daemon drains: ingest stops (503), the round loop
// free-runs until the potential falls under ε·peak (or the drain budget is
// spent), the recording is flushed, and the process exits 0. A second
// signal kills immediately. Recorded traces are first-class grid
// scenarios: `lbbench -grid -scenarios trace:replayed.jsonl ...` re-runs
// the exact ingested workload byte-reproducibly on the sweep engine.
//
// Exit codes: 0 clean (including graceful drain); 1 runtime failure;
// 2 usage errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/batch"
	"repro/internal/cliflags"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/serve"
	"repro/internal/signals"
	"repro/internal/workload"
)

const (
	exitOK      = 0
	exitFailure = 1
	exitUsage   = 2
)

func main() { os.Exit(run()) }

func run() int {
	fs := flag.NewFlagSet("lbserved", flag.ContinueOnError)
	var (
		topo         = fs.String("topo", "torus", "topology name (as in lbbench -topos)")
		n            = fs.Int("n", 64, "node count")
		algo         = fs.String("algo", "diffusion", "balancing algorithm (as in lbbench -algos)")
		mode         = fs.String("mode", "continuous", "load model: continuous or discrete")
		load         = fs.String("load", "", "initial workload kind (as in lbbench -loads); empty starts idle (all-zero loads)")
		scale        = fs.Float64("scale", 1e6, "initial workload magnitude (with -load)")
		eps          = fs.Float64("eps", 1e-3, "balance target ε (Φ ≤ ε·Φ⁰; also the drain target's ε·peak)")
		seed         = fs.Int64("seed", 1, "algorithm RNG seed")
		addr         = fs.String("addr", ":8080", "HTTP listen address (\":0\" picks a free port)")
		hz           = fs.Float64("hz", 50, "balancing rounds per second (0 free-runs as fast as the hardware allows)")
		replayPath   = fs.String("replay", "", "arrival trace to replay (JSONL, see -record)")
		speedup      = fs.String("speedup", "1x", "replay speed-up factor, e.g. 100x: multiplies -hz")
		recordPath   = fs.String("record", "", "record every injected arrival to this JSONL trace (replayable via -replay or lbbench -scenarios trace:<file>)")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "graceful-drain wall-clock budget")
		drainRounds  = fs.Int("drain-rounds", 4096, "graceful-drain round budget")
		telemetry    = fs.String("telemetry", "", "serve /metrics/prom and /debug/pprof/* on a second listener at this address (they are also on -addr; empty = off)")
	)
	var roundWorkersFlag string
	cliflags.RegisterRoundWorkers(fs, &roundWorkersFlag)
	if err := fs.Parse(os.Args[1:]); err != nil {
		return exitUsage
	}
	logger := log.New(os.Stderr, "lbserved: ", log.LstdFlags)

	// The daemon runs one hot session, so "auto" means the round loop gets
	// every core — there is no unit-level fan-out to share them with.
	roundWorkers, err := cliflags.ParseRoundWorkers(roundWorkersFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lbserved: %v\n", err)
		return exitUsage
	}
	if roundWorkers < 0 {
		roundWorkers = runtime.GOMAXPROCS(0)
	}

	factor, err := parseSpeedup(*speedup)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lbserved: %v\n", err)
		return exitUsage
	}
	interval := time.Duration(0)
	if *hz > 0 {
		rps := *hz * factor
		interval = time.Duration(float64(time.Second) / rps)
		if interval < time.Microsecond {
			interval = 0 // effectively free-running
		}
	}

	// The graph comes through the batch builder, so lbserved's topology is
	// the same instance a grid unit of the same (topo, n) balances on —
	// what makes a recorded trace replay against the identical graph.
	graphs, err := batch.BuildGraphs(batch.Spec{Topologies: []string{*topo}, N: *n})
	if err != nil {
		fmt.Fprintf(os.Stderr, "lbserved: %v\n", err)
		return exitUsage
	}
	g := graphs[strings.ToLower(strings.TrimSpace(*topo))]

	alg, err := core.ParseAlgorithm(*algo)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lbserved: %v\n", err)
		return exitUsage
	}
	md := core.Continuous
	switch *mode {
	case "continuous":
	case "discrete":
		md = core.Discrete
	default:
		fmt.Fprintf(os.Stderr, "lbserved: unknown mode %q (continuous or discrete)\n", *mode)
		return exitUsage
	}

	loads := make([]float64, g.N())
	if *load != "" {
		kind, err := workload.ParseKind(*load)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lbserved: %v\n", err)
			return exitUsage
		}
		loads = workload.Continuous(kind, g.N(), *scale, rand.New(rand.NewSource(*seed)))
	}

	cfg := core.Config{
		Graph:     g,
		Algorithm: alg,
		Mode:      md,
		Loads:     loads,
		Epsilon:   *eps,
		Seed:      *seed,
		Workers:   roundWorkers,
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "lbserved: %v\n", err)
		return exitUsage
	}

	var replay []scenario.Event
	if *replayPath != "" {
		replay, err = scenario.ReadTraceFile(*replayPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lbserved: %v\n", err)
			return exitUsage
		}
		logger.Printf("replaying %d events from %s at %s (effective interval %v)",
			len(replay), *replayPath, *speedup, interval)
	}

	var record *scenario.TraceWriter
	if *recordPath != "" {
		record, err = scenario.CreateTrace(*recordPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lbserved: %v\n", err)
			return exitFailure
		}
		defer record.Close()
	}

	// The ingest listener (-addr) already serves /metrics/prom and
	// /debug/pprof/*; -telemetry binds a second, typically loopback-only,
	// listener so operators can firewall ingest and observability apart.
	if *telemetry != "" {
		debugAddr, stopDebug, err := obs.ServeDebug(*telemetry, obs.Default())
		if err != nil {
			fmt.Fprintf(os.Stderr, "lbserved: -telemetry: %v\n", err)
			return exitUsage
		}
		defer stopDebug()
		logger.Printf("telemetry: /metrics/prom and /debug/pprof/ on http://%s", debugAddr)
	}

	srv, err := serve.New(serve.Options{
		Config:         cfg,
		Addr:           *addr,
		Interval:       interval,
		Replay:         replay,
		Record:         record,
		DrainTimeout:   *drainTimeout,
		DrainMaxRounds: *drainRounds,
		Logf:           logger.Printf,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "lbserved: %v\n", err)
		return exitUsage
	}

	ctx, stop := signals.Graceful(context.Background())
	defer stop()
	if err := srv.Run(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "lbserved: %v\n", err)
		return exitFailure
	}
	m := srv.Metrics()
	srv.Close()
	logger.Printf("done: %d rounds, Φ %.6g → %.6g (peak %.6g, %d arrivals, %.6g load ingested)",
		m.Round, m.PhiStart, m.Phi, m.PeakPhi, m.ArrivalsTotal, m.LoadInjected)
	return exitOK
}

// parseSpeedup accepts "100x", "2.5x" or a bare number.
func parseSpeedup(s string) (float64, error) {
	trimmed := strings.TrimSuffix(strings.TrimSpace(strings.ToLower(s)), "x")
	v, err := strconv.ParseFloat(trimmed, 64)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("bad -speedup %q (want e.g. 100x)", s)
	}
	return v, nil
}
