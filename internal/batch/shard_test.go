package batch_test

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/batch"
	"repro/internal/graph"
)

// writeShardJournals runs every shard of spec through its own JSONL journal
// file and returns the paths, the way m separate processes would.
func writeShardJournals(t *testing.T, spec batch.Spec, m int) []string {
	t.Helper()
	dir := t.TempDir()
	paths := make([]string, m)
	for i := 0; i < m; i++ {
		sharded, err := spec.Shard(i, m)
		if err != nil {
			t.Fatal(err)
		}
		paths[i] = filepath.Join(dir, fmt.Sprintf("shard%d.jsonl", i))
		sink, err := batch.CreateJSONL(paths[i])
		if err != nil {
			t.Fatal(err)
		}
		if _, err := batch.RunSink(context.Background(), sharded, fakeRun, sink); err != nil {
			t.Fatal(err)
		}
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return paths
}

func TestSpecShardValidation(t *testing.T) {
	spec := okSpec()
	for _, bad := range [][2]int{{0, 0}, {0, -1}, {-1, 3}, {3, 3}, {7, 3}} {
		if _, err := spec.Shard(bad[0], bad[1]); err == nil {
			t.Fatalf("Shard(%d, %d) accepted", bad[0], bad[1])
		}
	}
	// Shard fields planted directly (bypassing Shard) are rejected at
	// expansion time, before any unit runs.
	direct := spec
	direct.ShardIndex, direct.ShardCount = 5, 3
	if _, err := batch.Expand(direct); err == nil {
		t.Fatal("Expand accepted an out-of-range shard index")
	}
	direct = spec
	direct.ShardIndex, direct.ShardCount = 2, 0
	if err := direct.Validate(); err == nil {
		t.Fatal("Validate accepted a shard index without a shard count")
	}
}

// TestShardOwnershipDisjointExhaustive: every expansion index is owned by
// exactly one shard, for any shard count — including m far beyond the unit
// count.
func TestShardOwnershipDisjointExhaustive(t *testing.T) {
	units, err := batch.Expand(okSpec())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []int{1, 2, 3, 5, len(units), len(units) + 31} {
		for idx := range units {
			owners := 0
			for i := 0; i < m; i++ {
				if batch.ShardOwns(idx, i, m) {
					owners++
				}
			}
			if owners != 1 {
				t.Fatalf("m=%d: index %d owned by %d shards", m, idx, owners)
			}
		}
	}
}

// TestShardedSweepMergesByteIdentical is the tentpole guarantee at engine
// level: run the grid as m shard processes, k-way merge their journals, and
// the resumed report — and rewritten journal — must be byte-identical to an
// uninterrupted single-process sweep. m > unit count exercises empty
// shards: their journals hold a lone header and must merge cleanly.
func TestShardedSweepMergesByteIdentical(t *testing.T) {
	spec := okSpec() // 72 units
	fullRep, err := batch.Run(spec, fakeRun)
	if err != nil {
		t.Fatal(err)
	}
	fullOut := renderAll(t, fullRep)
	var fullJournal bytes.Buffer
	if _, err := batch.RunSink(context.Background(), spec, fakeRun, batch.NewJSONLSink(&fullJournal)); err != nil {
		t.Fatal(err)
	}

	for _, m := range []int{3, 100} {
		paths := writeShardJournals(t, spec, m)
		journal, stats, err := batch.ReadMergedJournals(paths...)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if stats.Journals != m || stats.Dropped != 0 {
			t.Fatalf("m=%d: stats %+v", m, stats)
		}
		if len(journal.Cells) != len(fullRep.Cells) {
			t.Fatalf("m=%d: merged %d cells, want %d", m, len(journal.Cells), len(fullRep.Cells))
		}
		// The merge reconstructs global expansion order exactly.
		for i, c := range journal.Cells {
			if c.Index != i {
				t.Fatalf("m=%d: merged cell %d has index %d", m, i, c.Index)
			}
		}
		var calls atomic.Int64
		var rewritten bytes.Buffer
		resumed, err := batch.Resume(context.Background(), spec, func(u batch.Unit, g *graph.G, loads []float64, algoSeed int64) (batch.Outcome, error) {
			calls.Add(1)
			return fakeRun(u, g, loads, algoSeed)
		}, journal, batch.NewJSONLSink(&rewritten))
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if calls.Load() != 0 {
			t.Fatalf("m=%d: complete shard set still re-ran %d units", m, calls.Load())
		}
		if !bytes.Equal(renderAll(t, resumed), fullOut) {
			t.Fatalf("m=%d: merged report differs from single-process sweep", m)
		}
		if !bytes.Equal(rewritten.Bytes(), fullJournal.Bytes()) {
			t.Fatalf("m=%d: rewritten journal differs from single-process journal", m)
		}
	}
}

// TestShardedResumeAfterKill: a shard dies partway, resumes from its own
// journal, and the merged whole still matches the uninterrupted sweep —
// the exact recipe the CI shard-merge job drives through the CLI.
func TestShardedResumeAfterKill(t *testing.T) {
	spec := okSpec()
	const m = 3
	fullRep, err := batch.Run(spec, fakeRun)
	if err != nil {
		t.Fatal(err)
	}
	paths := writeShardJournals(t, spec, m)

	// Shard 1 "dies": keep its header and first 5 cells only.
	dead, err := batch.ReadJournalFile(paths[1])
	if err != nil {
		t.Fatal(err)
	}
	dead.Cells = dead.Cells[:5]

	// Resume the dead shard under its sharded spec; only its missing units
	// re-run, and they re-run inside the shard's slice.
	sharded, err := spec.Shard(1, m)
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	sink, err := batch.ReplaceJSONL(paths[1]) // resume-in-place: the partial journal is already read back
	if err != nil {
		t.Fatal(err)
	}
	shardRep, err := batch.Resume(context.Background(), sharded, func(u batch.Unit, g *graph.G, loads []float64, algoSeed int64) (batch.Outcome, error) {
		calls.Add(1)
		if !batch.ShardOwns(u.Index, 1, m) {
			t.Errorf("resumed shard ran foreign unit %d", u.Index)
		}
		return fakeRun(u, g, loads, algoSeed)
	}, dead, sink)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if want := int64(len(shardRep.Cells) - 5); calls.Load() != want {
		t.Fatalf("resumed shard re-ran %d units, want %d", calls.Load(), want)
	}

	journal, _, err := batch.ReadMergedJournals(paths...)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := batch.Resume(context.Background(), spec, fakeRun, journal, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(renderAll(t, merged), renderAll(t, fullRep)) {
		t.Fatal("merge after a shard kill+resume differs from the uninterrupted sweep")
	}
}

// TestMergeJournalsRejectsOverlap: the same unit appearing in two journals
// (a shard merged twice, or overlapping hand-built shards) must fail loudly
// with the unit named — never fold into a silently double-counted figure.
func TestMergeJournalsRejectsOverlap(t *testing.T) {
	paths := writeShardJournals(t, okSpec(), 3)
	_, _, err := batch.ReadMergedJournals(paths[0], paths[1], paths[0])
	if err == nil {
		t.Fatal("duplicate shard journal accepted")
	}
	if !strings.Contains(err.Error(), "overlap") || !strings.Contains(err.Error(), "index 0") {
		t.Fatalf("overlap error does not name the collision: %v", err)
	}
}

// TestMergeJournalsRejectsDifferentGrids: journals indexing different grids
// share expansion indices without sharing units, so merging them must be
// refused outright.
func TestMergeJournalsRejectsDifferentGrids(t *testing.T) {
	spec := okSpec()
	other := spec
	other.Topologies = []string{"cycle", "star"}
	dir := t.TempDir()
	write := func(name string, s batch.Spec) string {
		path := filepath.Join(dir, name)
		sink, err := batch.CreateJSONL(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := batch.RunSink(context.Background(), s, fakeRun, sink); err != nil {
			t.Fatal(err)
		}
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	a := write("a.jsonl", spec)
	b := write("b.jsonl", other)
	if _, _, err := batch.ReadMergedJournals(a, b); err == nil || !strings.Contains(err.Error(), "topology dimensions differ") {
		t.Fatalf("different-grid merge accepted: %v", err)
	}

	// Different run parameters with identical dimensions are just as
	// incomparable.
	cheap := spec
	cheap.N = 8
	c := write("c.jsonl", cheap)
	if _, _, err := batch.ReadMergedJournals(a, c); err == nil || !strings.Contains(err.Error(), "not comparable") {
		t.Fatalf("different-parameter merge accepted: %v", err)
	}
}

// TestMergeJournalsRejectsUnordered: two shard journals concatenated into
// one file break the strictly-increasing index invariant the k-way merge
// depends on; the file must be rejected with advice, not misfolded.
func TestMergeJournalsRejectsUnordered(t *testing.T) {
	paths := writeShardJournals(t, okSpec(), 3)
	a, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(paths[1])
	if err != nil {
		t.Fatal(err)
	}
	cat := filepath.Join(t.TempDir(), "cat.jsonl")
	if err := os.WriteFile(cat, append(a, b...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := batch.ReadMergedJournals(cat); err == nil || !strings.Contains(err.Error(), "expansion order") {
		t.Fatalf("concatenated journal accepted: %v", err)
	}
}

// TestMergeToleratesTornTail: a shard hard-killed mid-write leaves a torn
// final line; the merge must keep every intact cell, count the tear, and a
// resume over the merged journal must reproduce the full sweep.
func TestMergeToleratesTornTail(t *testing.T) {
	spec := okSpec()
	paths := writeShardJournals(t, spec, 3)
	raw, err := os.ReadFile(paths[2])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(paths[2], raw[:len(raw)-9], 0o644); err != nil {
		t.Fatal(err)
	}
	journal, stats, err := batch.ReadMergedJournals(paths...)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Dropped != 1 {
		t.Fatalf("dropped %d lines, want 1", stats.Dropped)
	}
	full, err := batch.Run(spec, fakeRun)
	if err != nil {
		t.Fatal(err)
	}
	if len(journal.Cells) != len(full.Cells)-1 {
		t.Fatalf("merged %d cells, want %d", len(journal.Cells), len(full.Cells)-1)
	}
	resumed, err := batch.Resume(context.Background(), spec, fakeRun, journal, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(renderAll(t, resumed), renderAll(t, full)) {
		t.Fatal("resume over a torn merge differs from the full sweep")
	}
}
