package trace

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRowf("beta", 2.5)
	tb.Note("a footnote")
	var b strings.Builder
	if err := tb.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"== demo ==", "name", "alpha", "beta", "2.5", "note: a footnote"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTableRowTooWidePanics(t *testing.T) {
	tb := NewTable("x", "only")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tb.AddRow("a", "b")
}

func TestTableShortRowPadded(t *testing.T) {
	tb := NewTable("x", "a", "b")
	tb.AddRow("only")
	var buf strings.Builder
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestRenderCSVQuoting(t *testing.T) {
	tb := NewTable("", "k", "v")
	tb.AddRow(`with,comma`, `with"quote`)
	var b strings.Builder
	if err := tb.RenderCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `"with,comma"`) {
		t.Fatalf("comma cell not quoted: %s", out)
	}
	if !strings.Contains(out, `"with""quote"`) {
		t.Fatalf("quote cell not escaped: %s", out)
	}
}

func TestSeriesAppendAndRender(t *testing.T) {
	s1 := &Series{Name: "phi"}
	s2 := &Series{Name: "bound"}
	for i := 0; i < 3; i++ {
		s1.Append(float64(i), float64(10-i))
		s2.Append(float64(i), float64(20-i))
	}
	s2.Append(3, 0) // longer series must be truncated to the shortest
	var b strings.Builder
	if err := RenderSeries(&b, s1, s2); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "x,phi,bound\n") {
		t.Fatalf("header wrong: %s", out)
	}
	if strings.Count(out, "\n") != 4 {
		t.Fatalf("want 4 lines, got %q", out)
	}
}

func TestRenderSeriesEmpty(t *testing.T) {
	var b strings.Builder
	if err := RenderSeries(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatal("no series must render nothing")
	}
}

func TestAddRowfFloatFormatting(t *testing.T) {
	tb := NewTable("", "v")
	tb.AddRowf(3.14159265)
	if tb.Rows[0][0] != "3.142" {
		t.Fatalf("float formatting: %q", tb.Rows[0][0])
	}
}
