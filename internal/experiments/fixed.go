package experiments

import (
	"math"
	"math/rand"

	"repro/internal/diffusion"
	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/sequential"
	"repro/internal/sim"
	"repro/internal/speccache"
	"repro/internal/spectral"
	"repro/internal/trace"
	"repro/internal/workload"
)

func init() {
	register("E1", E1SequentialDrop)
	register("E2", E2ConcurrencyGap)
	register("E3", E3ContinuousConvergence)
	register("E4", E4DiscreteConvergence)
	register("A1", A1DiffusionFactor)
	register("A2", A2ActivationOrder)
	register("A3", A3Rounding)
}

// fixedSuite returns the topology sweep for the fixed-network experiments.
func fixedSuite(quick bool) []*graph.G {
	if quick {
		return []*graph.G{graph.Cycle(16), graph.Torus(4, 4), graph.Hypercube(4)}
	}
	return []*graph.G{
		graph.Path(64),
		graph.Cycle(64),
		graph.Torus(8, 8),
		graph.Hypercube(6),
		graph.DeBruijn(6),
		graph.Complete(64),
		graph.Star(64),
		graph.Barbell(32),
	}
}

// E1SequentialDrop validates Lemma 1: in the sequentialized round
// (increasing-weight activation order), every per-edge activation drops the
// potential by at least w_ij·|ℓᵢ−ℓⱼ|. The table reports, per topology ×
// workload, the number of activations, the count of violations (must be 0)
// and the minimum realized drop/bound ratio (must be ≥ 1).
func E1SequentialDrop(o Options) *trace.Table {
	t := trace.NewTable("E1 — Lemma 1: per-activation potential drop (sequentialized round)",
		"graph", "workload", "activations", "violations", "min drop/bound")
	kinds := []workload.Kind{workload.Spike, workload.Uniform, workload.Exponential}
	rounds := 20
	if o.Quick {
		rounds = 3
	}
	suite := fixedSuite(o.Quick)
	rows := make([]row, len(suite)*len(kinds))
	o.sweep(len(rows), func(i int, rng *rand.Rand) {
		g, k := suite[i/len(kinds)], kinds[i%len(kinds)]
		l := matrix.Vector(workload.Continuous(k, g.N(), 1e6, rng))
		totalActs, violations := 0, 0
		minRatio := math.Inf(1)
		for r := 0; r < rounds; r++ {
			rt := sequential.Sequentialize(g, l, sequential.IncreasingWeight, rng)
			for _, a := range rt.Activations {
				if a.Weight == 0 {
					continue
				}
				totalActs++
				if !a.Lemma1Holds() {
					violations++
				}
				if a.Lemma1RHS > 0 {
					if ratio := a.Drop / a.Lemma1RHS; ratio < minRatio {
						minRatio = ratio
					}
				}
			}
			// Advance the real system to the next round's start vector.
			st := diffusion.NewContinuous(g, l)
			st.Step()
			l = st.Load.Vector().Clone()
		}
		if math.IsInf(minRatio, 1) {
			minRatio = math.NaN()
		}
		rows[i] = row{g.Name(), k.String(), totalActs, violations, minRatio}
	})
	emit(t, rows)
	t.Note("Lemma 1 predicts violations = 0 and min drop/bound ≥ 1 in increasing-weight order.")
	return t
}

// E2ConcurrencyGap measures the paper's headline claim that concurrency
// costs at most a constant factor: the concurrent round's drop against the
// Σ w·|diff| analysis bound (ratio ≥ 1) and against a genuinely sequential
// greedy round that recomputes flows per activation.
func E2ConcurrencyGap(o Options) *trace.Table {
	t := trace.NewTable("E2 — concurrency gap: concurrent vs sequentialized vs greedy round drops",
		"graph", "Φ start", "concurrent drop", "greedy drop", "drop/Σw·diff", "greedy/concurrent")
	suite := fixedSuite(o.Quick)
	rows := make([]row, len(suite))
	o.sweep(len(rows), func(i int, rng *rand.Rand) {
		g := suite[i]
		l := matrix.Vector(workload.Continuous(workload.Uniform, g.N(), 1e3, rng))
		rep := sequential.MeasureGap(g, l, rng)
		greedyRatio := math.NaN()
		if rep.ConcurrentDrop > 0 {
			greedyRatio = rep.GreedyDrop / rep.ConcurrentDrop
		}
		rows[i] = row{g.Name(), rep.PhiStart, rep.ConcurrentDrop, rep.GreedyDrop, rep.ConcurrentRatio, greedyRatio}
	})
	emit(t, rows)
	t.Note("drop/Σw·diff ≥ 1 is the Lemma 1 aggregate; greedy/concurrent quantifies what sequential recomputation would buy.")
	return t
}

// E3ContinuousConvergence validates Theorem 4: the continuous Algorithm 1
// reaches ε·Φ⁰ within T = 4δ·ln(1/ε)/λ₂ rounds. Reports measured rounds,
// the bound, and their ratio across topologies and ε.
func E3ContinuousConvergence(o Options) *trace.Table {
	t := trace.NewTable("E3 — Theorem 4: continuous diffusion convergence (spike start)",
		"graph", "λ₂", "δ", "ε", "rounds", "bound", "rounds/bound")
	epsilons := []float64{1e-2, 1e-4, 1e-6}
	if o.Quick {
		epsilons = []float64{1e-3}
	}
	suite := fixedSuite(o.Quick)
	// λ₂ is a full eigen-decomposition: the speccache computes it once per
	// graph (deduplicating concurrent first requests across the pool), not
	// once per (graph, ε) cell — and shares it with every other experiment
	// and grid sweep in the process.
	rows := make([]row, len(suite)*len(epsilons))
	o.sweep(len(rows), func(i int, _ *rand.Rand) {
		g, eps := suite[i/len(epsilons)], epsilons[i%len(epsilons)]
		lambda2 := speccache.MustLambda2(g)
		init := workload.Continuous(workload.Spike, g.N(), 1e9, nil)
		st := diffusion.NewContinuous(g, init)
		bound := diffusion.ContinuousBound(g, lambda2, eps)
		rounds := sim.RoundsToFraction(st, eps, int(bound)+1)
		rows[i] = row{g.Name(), lambda2, g.MaxDegree(), eps, rounds, bound, float64(rounds) / bound}
	})
	emit(t, rows)
	t.Note("Theorem 4 holds when rounds/bound ≤ 1 on every row.")
	return t
}

// E4DiscreteConvergence validates Lemma 5 / Theorem 6: the discrete
// Algorithm 1 pushes Φ below 64δ³n/λ₂ within 8δ·ln(λ₂Φ⁰/64δ³n)/λ₂ rounds,
// and the residual potential sits at or below that threshold.
func E4DiscreteConvergence(o Options) *trace.Table {
	t := trace.NewTable("E4 — Theorem 6: discrete diffusion reaches the residual threshold",
		"graph", "Φ⁰", "threshold", "rounds", "bound", "rounds/bound", "Φ end/threshold")
	suite := fixedSuite(o.Quick)
	rows := make([]row, len(suite))
	o.sweep(len(rows), func(i int, _ *rand.Rand) {
		g := suite[i]
		lambda2 := speccache.MustLambda2(g)
		init := workload.Discrete(workload.Spike, g.N(), 1_000_000_000, nil)
		st := diffusion.NewDiscrete(g, init)
		phi0 := st.Potential()
		thr := diffusion.DiscreteThreshold(g, lambda2)
		bound := diffusion.DiscreteBound(g, lambda2, phi0)
		maxRounds := int(bound) + 1
		res := sim.Run(st, maxRounds, sim.UntilPotential(thr))
		ratio := math.NaN()
		if bound > 0 {
			ratio = float64(res.Rounds) / bound
		}
		rows[i] = row{g.Name(), phi0, thr, res.Rounds, bound, ratio, res.PhiEnd() / thr}
	})
	emit(t, rows)
	t.Note("Theorem 6 holds when rounds/bound ≤ 1 and Φ end/threshold ≤ 1.")
	return t
}

// A1DiffusionFactor ablates the paper's transfer rule 1/(4·max(dᵢ,dⱼ))
// against the classical 1/(δ+1) and an aggressive 1/(2·max(dᵢ,dⱼ)),
// measuring rounds to 1e-4·Φ⁰ and whether the potential ever increased
// (oscillation). The paper's conservative factor trades speed for the
// per-activation guarantee of Lemma 1.
func A1DiffusionFactor(o Options) *trace.Table {
	t := trace.NewTable("A1 — ablation: diffusion factor",
		"graph", "factor", "rounds to 1e-4", "Φ ever increased")
	factors := []struct {
		name  string
		alpha func(g *graph.G, i, j int) float64
	}{
		{"1/(4·max d)", func(g *graph.G, i, j int) float64 {
			d := g.Degree(i)
			if g.Degree(j) > d {
				d = g.Degree(j)
			}
			return 1 / (4 * float64(d))
		}},
		{"1/(δ+1)", func(g *graph.G, i, j int) float64 { return 1 / float64(g.MaxDegree()+1) }},
		{"1/(2·max d)", func(g *graph.G, i, j int) float64 {
			d := g.Degree(i)
			if g.Degree(j) > d {
				d = g.Degree(j)
			}
			return 1 / (2 * float64(d))
		}},
	}
	const eps = 1e-4
	suite := fixedSuite(o.Quick)
	rows := make([]row, len(suite)*len(factors))
	o.sweep(len(rows), func(ci int, _ *rand.Rand) {
		g, f := suite[ci/len(factors)], factors[ci%len(factors)]
		m := spectral.WeightedDiffusionMatrix(g, func(i, j int) float64 { return f.alpha(g, i, j) })
		init := workload.Continuous(workload.Spike, g.N(), 1e6, nil)
		st := diffusion.NewMatrixStepper(m, init)
		phi0 := st.Potential()
		maxRounds := 200000
		if o.Quick {
			maxRounds = 20000
		}
		rose := false
		prev := phi0
		rounds := maxRounds + 1
		for r := 1; r <= maxRounds; r++ {
			st.Step()
			phi := st.Potential()
			if phi > prev*(1+1e-12) {
				rose = true
			}
			prev = phi
			if phi <= eps*phi0 {
				rounds = r
				break
			}
		}
		rows[ci] = row{g.Name(), f.name, rounds, rose}
	})
	emit(t, rows)
	t.Note("rounds = maxRounds+1 means the target was not reached (e.g. α too aggressive oscillates on bipartite-ish graphs).")
	return t
}

// A2ActivationOrder ablates the sequentialization's activation order: the
// Lemma 1 per-activation inequality is proved for increasing-weight order;
// this measures how often it fails under decreasing and random orders.
func A2ActivationOrder(o Options) *trace.Table {
	t := trace.NewTable("A2 — ablation: sequentialization activation order vs Lemma 1",
		"graph", "order", "activations", "violations", "violation %")
	trials := 50
	if o.Quick {
		trials = 5
	}
	orders := []sequential.Order{sequential.IncreasingWeight, sequential.DecreasingWeight, sequential.RandomOrder}
	suite := fixedSuite(o.Quick)
	rows := make([]row, len(suite)*len(orders))
	o.sweep(len(rows), func(i int, rng *rand.Rand) {
		g, ord := suite[i/len(orders)], orders[i%len(orders)]
		acts, viols := 0, 0
		for k := 0; k < trials; k++ {
			l := matrix.Vector(workload.Continuous(workload.Uniform, g.N(), 1e4, rng))
			rt := sequential.Sequentialize(g, l, ord, rng)
			for _, a := range rt.Activations {
				if a.Weight == 0 {
					continue
				}
				acts++
				if !a.Lemma1Holds() {
					viols++
				}
			}
		}
		pct := 0.0
		if acts > 0 {
			pct = 100 * float64(viols) / float64(acts)
		}
		rows[i] = row{g.Name(), ord.String(), acts, viols, pct}
	})
	emit(t, rows)
	t.Note("increasing order must show 0 violations; the other orders demonstrate why the proof sorts by weight.")
	return t
}

// A3Rounding ablates the discrete rounding rule: floor (the paper's) vs
// randomized rounding of the fractional transfer, comparing residual
// potential after convergence stalls against the Theorem 6 threshold.
func A3Rounding(o Options) *trace.Table {
	t := trace.NewTable("A3 — ablation: discrete rounding rule",
		"graph", "rounding", "Φ residual", "threshold", "residual/threshold")
	horizon := 20000
	if o.Quick {
		horizon = 2000
	}
	modes := []string{"floor", "randomized"}
	suite := fixedSuite(o.Quick)
	rows := make([]row, len(suite)*len(modes))
	o.sweep(len(rows), func(ci int, rng *rand.Rand) {
		g, mode := suite[ci/len(modes)], modes[ci%len(modes)]
		thr := diffusion.DiscreteThreshold(g, speccache.MustLambda2(g))
		tokens := workload.Discrete(workload.Spike, g.N(), 100_000_000, nil)
		cur := append([]int64(nil), tokens...)
		next := make([]int64, len(cur))
		for r := 0; r < horizon; r++ {
			copy(next, cur)
			moved := false
			for _, e := range g.Edges() {
				li, lj := cur[e.U], cur[e.V]
				if li == lj {
					continue
				}
				w := diffusion.EdgeWeight(g, e.U, e.V, float64(li), float64(lj))
				var amt int64
				switch mode {
				case "floor":
					amt = int64(w)
				case "randomized":
					amt = int64(w)
					if rng.Float64() < w-math.Floor(w) {
						amt++
					}
				}
				if amt == 0 {
					continue
				}
				moved = true
				if li > lj {
					next[e.U] -= amt
					next[e.V] += amt
				} else {
					next[e.U] += amt
					next[e.V] -= amt
				}
			}
			cur, next = next, cur
			if !moved && mode == "floor" {
				break // floor rule reached its fixed point
			}
		}
		var mean float64
		for _, v := range cur {
			mean += float64(v)
		}
		mean /= float64(len(cur))
		var phi float64
		for _, v := range cur {
			d := float64(v) - mean
			phi += d * d
		}
		rows[ci] = row{g.Name(), mode, phi, thr, phi / thr}
	})
	emit(t, rows)
	t.Note("both rules must end at or below the Theorem 6 threshold; randomized rounding typically lands lower but never terminates exactly.")
	return t
}
