// Package flow computes balancing flows and the flow-quality metrics used
// to compare schemes, following the framework of Diekmann, Frommer and
// Monien [7] that the paper's related-work section builds on.
//
// A balancing flow assigns to each edge a signed amount such that routing
// it moves the load vector to the balanced state: the flow's divergence at
// node i equals ℓᵢ − ℓ̄. Among all balancing flows the ℓ₂-minimal one is
// the "potential flow" f(u,v) = x_u − x_v where L·x = ℓ − ℓ̄·1 — and a
// classical result of [7] is that every proper diffusion scheme (first
// order, second order, OPS, and the paper's Algorithm 1 in the continuous
// case) routes exactly this flow in the limit. The E15 experiment verifies
// that property empirically, which is a strong end-to-end correctness check
// on the whole stack (stepper + eigen/CG solver at once).
package flow

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/spectral"
)

// EdgeFlow is a flow vector indexed like g.Edges(): entry k is the signed
// amount routed across edge k from Edge.U to Edge.V (negative = reverse).
type EdgeFlow struct {
	G      *graph.G
	Values []float64
}

// NewEdgeFlow returns a zero flow on g.
func NewEdgeFlow(g *graph.G) *EdgeFlow {
	return &EdgeFlow{G: g, Values: make([]float64, g.M())}
}

// Add accumulates amount (U→V positive) on edge index k.
func (f *EdgeFlow) Add(k int, amount float64) { f.Values[k] += amount }

// L2 returns ‖f‖₂.
func (f *EdgeFlow) L2() float64 { return matrix.Vector(f.Values).Norm2() }

// L1 returns Σ|f_e| — the total load moved across edges.
func (f *EdgeFlow) L1() float64 { return matrix.Vector(f.Values).Norm1() }

// MaxEdge returns max|f_e| — the most congested edge.
func (f *EdgeFlow) MaxEdge() float64 { return matrix.Vector(f.Values).NormInf() }

// Divergence returns the node-wise divergence of the flow: out-flow minus
// in-flow at every node. For a balancing flow of load vector ℓ this equals
// ℓ − ℓ̄·1.
func (f *EdgeFlow) Divergence() matrix.Vector {
	div := make(matrix.Vector, f.G.N())
	for k, e := range f.G.Edges() {
		div[e.U] += f.Values[k]
		div[e.V] -= f.Values[k]
	}
	return div
}

// Sub returns f − g as a new flow (same graph required).
func (f *EdgeFlow) Sub(other *EdgeFlow) (*EdgeFlow, error) {
	if f.G != other.G {
		return nil, fmt.Errorf("flow: Sub across different graphs")
	}
	out := NewEdgeFlow(f.G)
	for k := range out.Values {
		out.Values[k] = f.Values[k] - other.Values[k]
	}
	return out, nil
}

// Optimal computes the ℓ₂-minimal balancing flow for load vector l on g:
// solve L·x = (l − ℓ̄·1) and set f(u,v) = x_u − x_v per edge.
func Optimal(g *graph.G, l matrix.Vector) (*EdgeFlow, error) {
	if len(l) != g.N() {
		return nil, fmt.Errorf("flow: load length %d for n=%d", len(l), g.N())
	}
	d := l.Clone()
	mean := d.Mean()
	for i := range d {
		d[i] -= mean
	}
	x, err := spectral.SolveLaplacian(g, d)
	if err != nil {
		return nil, err
	}
	f := NewEdgeFlow(g)
	for k, e := range g.Edges() {
		f.Values[k] = x[e.U] - x[e.V]
	}
	return f, nil
}

// IsBalancing reports whether f's divergence matches the deviation of l
// within tol — i.e. routing f balances l exactly.
func IsBalancing(f *EdgeFlow, l matrix.Vector, tol float64) bool {
	div := f.Divergence()
	mean := l.Mean()
	for i := range div {
		if math.Abs(div[i]-(l[i]-mean)) > tol {
			return false
		}
	}
	return true
}

// Accumulator records the cumulative per-edge flow a running scheme routes.
// Wrap a stepper's per-round flows with Record to build the realized
// aggregate flow, then compare against Optimal.
type Accumulator struct {
	Flow *EdgeFlow
	// edgeIndex maps a canonical edge to its index in g.Edges().
	edgeIndex map[graph.Edge]int
}

// NewAccumulator prepares an accumulator for g.
func NewAccumulator(g *graph.G) *Accumulator {
	idx := make(map[graph.Edge]int, g.M())
	for k, e := range g.Edges() {
		idx[e] = k
	}
	return &Accumulator{Flow: NewEdgeFlow(g), edgeIndex: idx}
}

// Record adds a transfer of amount from node u to node v (must be an edge
// of the underlying graph).
func (a *Accumulator) Record(u, v int, amount float64) error {
	e := graph.Edge{U: u, V: v}.Canonical()
	k, ok := a.edgeIndex[e]
	if !ok {
		return fmt.Errorf("flow: (%d,%d) is not an edge", u, v)
	}
	if e.U == u {
		a.Flow.Add(k, amount)
	} else {
		a.Flow.Add(k, -amount)
	}
	return nil
}
