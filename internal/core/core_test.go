package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/workload"
)

func TestBalanceDiffusionContinuous(t *testing.T) {
	g := graph.Torus(4, 4)
	res, err := Balance(Config{
		Graph:     g,
		Algorithm: Diffusion,
		Mode:      Continuous,
		Loads:     SpikeLoads(g.N(), 1e6),
		Epsilon:   1e-3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	if res.PhiEnd > 1e-3*res.PhiStart {
		t.Fatalf("Φ end %v above target", res.PhiEnd)
	}
	if res.BoundName != "Theorem 4" || res.Bound <= 0 {
		t.Fatalf("bound: %q %v", res.BoundName, res.Bound)
	}
	if float64(res.Rounds) > res.Bound {
		t.Fatalf("rounds %d exceed Theorem 4 bound %v", res.Rounds, res.Bound)
	}
	if res.Lambda2 <= 0 || res.Delta != 4 {
		t.Fatalf("spectral fields: λ₂=%v δ=%d", res.Lambda2, res.Delta)
	}
	if len(res.Trace) != res.Rounds+1 {
		t.Fatal("trace length mismatch")
	}
}

func TestBalanceDiffusionDiscreteStopsAtThreshold(t *testing.T) {
	g := graph.Cycle(16)
	res, err := Balance(Config{
		Graph:     g,
		Algorithm: Diffusion,
		Mode:      Discrete,
		Loads:     SpikeLoads(g.N(), 1e7),
		Epsilon:   1e-9, // far below the threshold: the threshold must win
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not reach discrete threshold: %+v", res)
	}
	if res.BoundName != "Theorem 6" {
		t.Fatalf("bound name %q", res.BoundName)
	}
}

func TestBalanceDimensionExchange(t *testing.T) {
	g := graph.Hypercube(4)
	res, err := Balance(Config{
		Graph:     g,
		Algorithm: DimensionExchange,
		Loads:     SpikeLoads(g.N(), 1e5),
		Epsilon:   1e-2,
		Seed:      7,
		MaxRounds: 20000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("dimension exchange did not converge: %+v", res)
	}
}

func TestBalanceRandomPartnersContinuous(t *testing.T) {
	g := graph.Cycle(64) // topology irrelevant; supplies n
	res, err := Balance(Config{
		Graph:     g,
		Algorithm: RandomPartners,
		Loads:     SpikeLoads(g.N(), 1e6),
		Epsilon:   1e-4,
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("random partners did not converge: %+v", res)
	}
	if !strings.HasPrefix(res.BoundName, "Theorem 12") {
		t.Fatalf("bound name %q", res.BoundName)
	}
	if res.Lambda2 != 0 {
		t.Fatal("random partners must not compute λ₂")
	}
}

func TestBalanceRandomPartnersDiscrete(t *testing.T) {
	g := graph.Cycle(64)
	res, err := Balance(Config{
		Graph:     g,
		Algorithm: RandomPartners,
		Mode:      Discrete,
		Loads:     SpikeLoads(g.N(), 64*100000),
		Epsilon:   1e-9,
		Seed:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("discrete random partners: %+v", res)
	}
	if !strings.HasPrefix(res.BoundName, "Theorem 14") {
		t.Fatalf("bound name %q", res.BoundName)
	}
}

func TestBalanceRoundRobinBothModes(t *testing.T) {
	g := graph.Hypercube(4)
	for _, mode := range []Mode{Continuous, Discrete} {
		res, err := Balance(Config{
			Graph:     g,
			Algorithm: RoundRobinExchange,
			Mode:      mode,
			Loads:     SpikeLoads(g.N(), 1.6e6),
			Epsilon:   1e-3,
			MaxRounds: 100000,
		})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if !res.Converged {
			t.Fatalf("%v: round robin did not converge: %+v", mode, res)
		}
	}
}

func TestBalanceFirstAndSecondOrder(t *testing.T) {
	g := graph.Cycle(16)
	for _, alg := range []Algorithm{FirstOrder, SecondOrder} {
		res, err := Balance(Config{
			Graph:     g,
			Algorithm: alg,
			Loads:     SpikeLoads(g.N(), 1e4),
			Epsilon:   1e-2,
			MaxRounds: 100000,
		})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if !res.Converged {
			t.Fatalf("%v did not converge", alg)
		}
	}
}

func TestBalanceWorkersEquivalent(t *testing.T) {
	g := graph.Torus(5, 5)
	loads := workload.Continuous(workload.LinearRamp, g.N(), 1000, nil)
	base := Config{Graph: g, Algorithm: Diffusion, Loads: loads, Epsilon: 1e-3}
	r1, err := Balance(base)
	if err != nil {
		t.Fatal(err)
	}
	par := base
	par.Workers = 8
	r2, err := Balance(par)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Rounds != r2.Rounds || math.Abs(r1.PhiEnd-r2.PhiEnd) > 1e-12 {
		t.Fatal("worker count changed the result")
	}
}

func TestBalanceValidation(t *testing.T) {
	g := graph.Cycle(4)
	cases := []Config{
		{},                              // no graph
		{Graph: g, Loads: []float64{1}}, // length mismatch
		{Graph: g, Loads: []float64{1, 2, 3, math.NaN()}},
		{Graph: g, Loads: []float64{1, 2, 3, -4}},
		{Graph: g, Loads: []float64{1, 2, 3, 4}, Epsilon: 2},
		{Graph: g, Loads: []float64{1, 2, 3, 4}, Algorithm: FirstOrder, Mode: Discrete},
	}
	for i, cfg := range cases {
		if _, err := Balance(cfg); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestParseAlgorithm(t *testing.T) {
	for _, a := range []Algorithm{Diffusion, DimensionExchange, RandomPartners, FirstOrder, SecondOrder, RoundRobinExchange} {
		got, err := ParseAlgorithm(a.String())
		if err != nil || got != a {
			t.Fatalf("round trip %v: %v %v", a, got, err)
		}
	}
	if _, err := ParseAlgorithm("nope"); err == nil {
		t.Fatal("expected error")
	}
}

func TestModeAndAlgorithmStrings(t *testing.T) {
	if Continuous.String() != "continuous" || Discrete.String() != "discrete" {
		t.Fatal("mode names")
	}
	if Algorithm(42).String() != "Algorithm(42)" {
		t.Fatal("unknown algorithm formatting")
	}
}

func TestSpikeLoads(t *testing.T) {
	v := SpikeLoads(3, 9)
	if v[0] != 9 || v[1] != 0 || v[2] != 0 {
		t.Fatalf("spike %v", v)
	}
	if len(SpikeLoads(0, 9)) != 0 {
		t.Fatal("n=0")
	}
}
