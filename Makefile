# Local targets mirror .github/workflows/ci.yml exactly: `make ci` runs the
# same build, vet, gofmt, staticcheck, race-test, benchmark-smoke and
# shard/resume smoke steps the workflow does, so a green `make ci` means a
# green PR. (staticcheck is skipped with a warning when the binary is not
# installed; CI installs it pinned.)

GO ?= go

.PHONY: build test vet fmt fmt-check staticcheck bench grid-smoke resume-smoke shard-merge-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed — skipping (CI runs it via honnef.co/go/tools@2023.1.7)" >&2; \
	fi

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

grid-smoke:
	$(GO) run ./cmd/lbbench -grid -n 32 -seeds 1,2 -parallel 1 -format csv > /tmp/lbbench-w1.csv
	$(GO) run ./cmd/lbbench -grid -n 32 -seeds 1,2 -parallel 8 -format csv > /tmp/lbbench-w8.csv
	cmp /tmp/lbbench-w1.csv /tmp/lbbench-w8.csv

RESUME_ARGS = -grid -topos cycle,torus,hypercube,star,complete,path \
	-algos diffusion,dimexchange,randpair -modes continuous,discrete \
	-loads spike,uniform -n 192 -seeds 1,2,3 -eps 1e-5 -parallel 4 -format csv

resume-smoke:
	$(GO) build -o /tmp/lbbench ./cmd/lbbench
	rm -f /tmp/lbbench-cells.jsonl
	/tmp/lbbench $(RESUME_ARGS) > /tmp/lbbench-full.csv
	/tmp/lbbench $(RESUME_ARGS) -out /tmp/lbbench-cells.jsonl > /dev/null & \
	pid=$$!; \
	for i in $$(seq 1 600); do \
		{ [ -f /tmp/lbbench-cells.jsonl ] && [ "$$(wc -l < /tmp/lbbench-cells.jsonl)" -ge 80 ]; } && break; \
		kill -0 $$pid 2>/dev/null || break; \
		sleep 0.1; \
	done; \
	kill -INT $$pid 2>/dev/null; wait $$pid || true
	/tmp/lbbench $(RESUME_ARGS) -resume /tmp/lbbench-cells.jsonl -out /tmp/lbbench-cells.jsonl > /tmp/lbbench-resumed.csv
	cmp /tmp/lbbench-full.csv /tmp/lbbench-resumed.csv

SHARD_ARGS = -grid -topos cycle,torus,hypercube,star,complete,path \
	-algos diffusion,dimexchange,randpair -modes continuous,discrete \
	-loads spike,uniform -n 160 -seeds 1,2,3 -eps 1e-5 -parallel 4 -format csv

shard-merge-smoke:
	$(GO) build -o /tmp/lbbench ./cmd/lbbench
	rm -f /tmp/lbbench-s0.jsonl /tmp/lbbench-s1.jsonl /tmp/lbbench-s2.jsonl
	/tmp/lbbench $(SHARD_ARGS) > /tmp/lbbench-shard-full.csv
	/tmp/lbbench $(SHARD_ARGS) -stream-agg > /tmp/lbbench-shard-fullagg.csv
	/tmp/lbbench $(SHARD_ARGS) -shard 0/3 -out /tmp/lbbench-s0.jsonl > /dev/null & \
	p0=$$!; \
	/tmp/lbbench $(SHARD_ARGS) -shard 1/3 -out /tmp/lbbench-s1.jsonl > /dev/null & \
	p1=$$!; \
	/tmp/lbbench $(SHARD_ARGS) -shard 2/3 -out /tmp/lbbench-s2.jsonl > /dev/null & \
	p2=$$!; \
	for i in $$(seq 1 600); do \
		{ [ -f /tmp/lbbench-s2.jsonl ] && [ "$$(wc -l < /tmp/lbbench-s2.jsonl)" -ge 20 ]; } && break; \
		kill -0 $$p2 2>/dev/null || break; \
		sleep 0.1; \
	done; \
	kill -INT $$p2 2>/dev/null; wait $$p2 || true; wait $$p0; wait $$p1
	/tmp/lbbench $(SHARD_ARGS) -shard 2/3 -resume /tmp/lbbench-s2.jsonl -out /tmp/lbbench-s2.jsonl > /dev/null
	/tmp/lbbench $(SHARD_ARGS) -merge /tmp/lbbench-s0.jsonl,/tmp/lbbench-s1.jsonl,/tmp/lbbench-s2.jsonl > /tmp/lbbench-merged.csv
	cmp /tmp/lbbench-shard-full.csv /tmp/lbbench-merged.csv
	/tmp/lbbench $(SHARD_ARGS) -merge /tmp/lbbench-s0.jsonl,/tmp/lbbench-s1.jsonl,/tmp/lbbench-s2.jsonl -stream-agg > /tmp/lbbench-mergedagg.csv
	cmp /tmp/lbbench-shard-fullagg.csv /tmp/lbbench-mergedagg.csv

ci: build vet fmt-check staticcheck test bench grid-smoke resume-smoke shard-merge-smoke
