package batch

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// MergeStats summarizes one merge pass.
type MergeStats struct {
	// Journals is how many journal files were merged, Cells how many cells
	// were delivered to the sink, and Dropped how many corrupt/truncated
	// lines were discarded across all inputs.
	Journals, Cells, Dropped int
}

// MergeJournals merges the per-shard JSONL journals at paths into sink.
//
// Shard journals are each written in expansion order, so their cell indices
// are strictly increasing per file and disjoint across shards; a k-way merge
// by unit Index therefore reconstructs the exact global expansion order a
// single-process sweep would have streamed — which is what lets a sink fold
// or re-journal the merged stream bit-identically. Memory stays at one
// buffered cell per input file, independent of the unit count.
//
// Validation fails loudly instead of corrupting a figure quietly:
//   - every spec header must describe the same grid (dimensions, n, scale,
//     ε, round cap) as the first one — only the shard assignment may differ;
//     each header is also forwarded to the sink (SpecWriter) in encounter
//     order, so an AggSink can total the expected units per shard;
//   - a unit Index appearing in two journals (overlapping or duplicated
//     shards, the same shard merged twice) is an error naming the unit and
//     both files;
//   - a journal whose indices are not strictly increasing (e.g. two shard
//     journals hand-concatenated into one file) is rejected — pass the
//     original per-shard files separately, or replay a concatenated journal
//     through Resume, which orders by Key instead.
//
// A torn final line (shard killed mid-write) is tolerated exactly as
// ReadJournal tolerates it: the remainder of that file is dropped and
// counted, and the missing units simply stay missing — Resume re-runs them.
func MergeJournals(sink Sink, paths ...string) (MergeStats, error) {
	var stats MergeStats
	if len(paths) == 0 {
		return stats, fmt.Errorf("batch: merge: no journals given")
	}
	var ref *Spec
	scanners := make([]*journalScanner, 0, len(paths))
	defer func() {
		for _, s := range scanners {
			s.close()
		}
	}()
	for _, path := range paths {
		path := path
		onSpec := func(sp Spec) error {
			if ref == nil {
				first := sp.withDefaults()
				ref = &first
			} else if err := SameGrid(*ref, sp); err != nil {
				return fmt.Errorf("batch: merge: journal %s: %w", path, err)
			}
			if sw, ok := sink.(SpecWriter); ok {
				return sw.Spec(sp)
			}
			return nil
		}
		s, err := openJournalScanner(path, onSpec)
		if err != nil {
			return stats, err
		}
		scanners = append(scanners, s)
		// Priming pulls the file's leading header(s) through onSpec before
		// any cell flows, in path order — deterministic header delivery.
		if err := s.advance(); err != nil {
			return stats, err
		}
		stats.Journals++
	}

	lastIdx, lastPath := -1, ""
	for {
		best := -1
		for i, s := range scanners {
			if s.ok && (best == -1 || s.cur.Index < scanners[best].cur.Index) {
				best = i
			}
		}
		if best == -1 {
			break
		}
		c := scanners[best].cur
		if c.Index == lastIdx {
			return stats, fmt.Errorf(
				"batch: merge: unit %s (index %d) appears in both %s and %s — "+
					"shard journals overlap; merge each shard's journal exactly once",
				c.Key(), c.Index, lastPath, scanners[best].path)
		}
		lastIdx, lastPath = c.Index, scanners[best].path
		if err := sink.Cell(c); err != nil {
			return stats, err
		}
		stats.Cells++
		if err := scanners[best].advance(); err != nil {
			return stats, err
		}
	}
	for _, s := range scanners {
		stats.Dropped += s.dropped
	}
	return stats, nil
}

// ReadMergedJournals merges the journals at paths into memory: one Journal
// with every header (in encounter order) and the cells in global expansion
// order, ready for Resume. The convenience form of MergeJournals for
// report-building callers; use MergeJournals with an AggSink when the cells
// must not materialize.
func ReadMergedJournals(paths ...string) (*Journal, MergeStats, error) {
	j := &Journal{}
	stats, err := MergeJournals(&journalCollector{j: j}, paths...)
	if err != nil {
		return nil, stats, err
	}
	j.Dropped = stats.Dropped
	return j, stats, nil
}

// journalCollector adapts a Journal to the Sink interface for
// ReadMergedJournals.
type journalCollector struct{ j *Journal }

func (c *journalCollector) Spec(s Spec) error {
	c.j.Specs = append(c.j.Specs, s)
	return nil
}

func (c *journalCollector) Cell(cell Cell) error {
	c.j.Cells = append(c.j.Cells, cell)
	return nil
}

func (c *journalCollector) Close() error { return nil }

// SameGrid verifies two specs describe the same grid: identical dimensions
// (after the expansion's own normalization), identical seed lists and
// identical run parameters. Shard assignment and worker count are free to
// differ — they change which process computed a unit, never the unit's
// outcome. This is the merge path's compatibility check, stronger than
// Journal.CheckSpec (which compares run parameters only): two specs can
// agree on n/scale/ε while indexing entirely different grids, and a merge
// keyed by expansion index must refuse exactly that.
func SameGrid(a, b Spec) error {
	a, b = a.withDefaults(), b.withDefaults()
	if a.N != b.N || a.Scale != b.Scale || a.Epsilon != b.Epsilon || a.MaxRounds != b.MaxRounds {
		return fmt.Errorf(
			"run parameters differ (n=%d scale=%g epsilon=%g max_rounds=%d vs n=%d scale=%g epsilon=%g max_rounds=%d) — outcomes are not comparable",
			a.N, a.Scale, a.Epsilon, a.MaxRounds, b.N, b.Scale, b.Epsilon, b.MaxRounds)
	}
	dims := []struct {
		name string
		a, b []string
	}{
		{"topology", a.Topologies, b.Topologies},
		{"algorithm", a.Algorithms, b.Algorithms},
		{"mode", a.Modes, b.Modes},
		{"workload", a.Workloads, b.Workloads},
	}
	for _, d := range dims {
		an, err := normalize(d.name, d.a)
		if err != nil {
			return err
		}
		bn, err := normalize(d.name, d.b)
		if err != nil {
			return err
		}
		if !equalStrings(an, bn) {
			return fmt.Errorf("%s dimensions differ (%v vs %v) — these journals index different grids; "+
				"merge only shards of one sweep, or concatenate and replay through -resume (which matches by Key)", d.name, an, bn)
		}
	}
	// Scenarios compare in canonical form, so "bursty" matches
	// "bursty:16:0.25" (same process) and an old scenario-free journal
	// header (nil → default {"static"}) matches a defaulted new one.
	as, err := a.CanonicalScenarios()
	if err != nil {
		return err
	}
	bs, err := b.CanonicalScenarios()
	if err != nil {
		return err
	}
	if !equalStrings(as, bs) {
		return fmt.Errorf("scenario dimensions differ (%v vs %v) — these journals index different grids; "+
			"merge only shards of one sweep, or concatenate and replay through -resume (which matches by Key)", as, bs)
	}
	if len(a.Seeds) != len(b.Seeds) {
		return fmt.Errorf("seed lists differ (%v vs %v)", a.Seeds, b.Seeds)
	}
	for i := range a.Seeds {
		if a.Seeds[i] != b.Seeds[i] {
			return fmt.Errorf("seed lists differ (%v vs %v)", a.Seeds, b.Seeds)
		}
	}
	return nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// journalScanner pulls one journal file cell by cell for the k-way merge,
// processing header lines through onSpec as they are encountered and
// enforcing the strictly-increasing index invariant every engine-written
// journal satisfies.
type journalScanner struct {
	path    string
	f       *os.File
	br      *bufio.Reader
	onSpec  func(Spec) error
	cur     Cell
	ok      bool
	lastIdx int
	dropped int
}

func openJournalScanner(path string, onSpec func(Spec) error) (*journalScanner, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("batch: merge: %w", err)
	}
	return &journalScanner{
		path: path, f: f, br: bufio.NewReader(f),
		onSpec: onSpec, lastIdx: -1,
	}, nil
}

func (s *journalScanner) close() {
	if s.f != nil {
		s.f.Close()
		s.f = nil
	}
}

// advance loads the file's next cell into cur (ok reports whether one is
// available). Headers are forwarded inline; a corrupt/truncated line ends
// the file with the remainder counted into dropped, exactly as ReadJournal
// would have dropped it.
func (s *journalScanner) advance() error {
	s.ok = false
	for {
		line, readErr := s.br.ReadBytes('\n')
		if t := bytes.TrimSpace(line); len(t) > 0 {
			header, cell, perr := parseJournalLine(t)
			switch {
			case perr != nil:
				s.dropped++
				s.dropped += countLines(s.br)
				return nil
			case header != nil:
				if err := s.onSpec(*header.Spec); err != nil {
					return err
				}
			default:
				if cell.Index <= s.lastIdx {
					return fmt.Errorf(
						"batch: merge: journal %s is not in expansion order (index %d after %d) — "+
							"was it hand-concatenated? pass the original per-shard journals separately",
						s.path, cell.Index, s.lastIdx)
				}
				s.lastIdx = cell.Index
				s.cur, s.ok = cell, true
				return nil
			}
		}
		if readErr == io.EOF {
			return nil
		}
		if readErr != nil {
			return fmt.Errorf("batch: merge: journal %s: %w", s.path, readErr)
		}
	}
}

// parseJournalLine classifies one non-empty journal line. A header is
// distinguishable by its "spec" key, which a cell line never has; a line
// that decodes as neither reports an error (torn or corrupt).
func parseJournalLine(t []byte) (*specHeader, Cell, error) {
	var h specHeader
	if json.Unmarshal(t, &h) == nil && h.Spec != nil {
		return &h, Cell{}, nil
	}
	var c Cell
	if err := json.Unmarshal(t, &c); err != nil {
		return nil, Cell{}, err
	}
	return nil, c, nil
}
