package cliflags

import (
	"flag"

	"repro/internal/batch"
)

// Grid holds the shared sweep-grid flag values after parsing. Register it
// with RegisterGrid; build the spec with Spec.
type Grid struct {
	Topos, Algos, Modes, Loads, Scenarios string
	N                                     int
	Seeds                                 string
	Scale, Eps                            float64
	Rounds, Parallel                      int
	RoundWorkers                          string
}

// RegisterGrid registers the sweep grid's dimension and run-parameter flags
// on fs — the one definition lbbench and lborch both present, so the grids
// they accept (and the help they print) cannot drift apart.
func RegisterGrid(fs *flag.FlagSet) *Grid {
	g := &Grid{}
	fs.StringVar(&g.Topos, "topos", "cycle,torus,hypercube", "grid: comma-separated topology names")
	fs.StringVar(&g.Algos, "algos", "diffusion,dimexchange,randpair", "grid: comma-separated algorithm names")
	fs.StringVar(&g.Modes, "modes", "continuous", "grid: comma-separated load modes (continuous,discrete)")
	fs.StringVar(&g.Loads, "loads", "spike,uniform", "grid: comma-separated workload kinds")
	fs.StringVar(&g.Scenarios, "scenarios", "static", "grid: comma-separated scenarios (time-varying arrivals / adversarial spikes / topology churn)")
	fs.IntVar(&g.N, "n", 64, "grid: approximate node count per topology")
	fs.StringVar(&g.Seeds, "seeds", "1", "grid: comma-separated repetition seeds")
	fs.Float64Var(&g.Scale, "scale", 1e6, "grid: load magnitude")
	fs.Float64Var(&g.Eps, "eps", 1e-3, "grid: convergence target Φ ≤ ε·Φ⁰")
	fs.IntVar(&g.Rounds, "rounds", 0, "grid: round cap per unit (0 = theorem-derived default)")
	fs.IntVar(&g.Parallel, "parallel", 0, "worker-pool width for sweeps (0 = GOMAXPROCS)")
	RegisterRoundWorkers(fs, &g.RoundWorkers)
	return g
}

// RegisterRoundWorkers registers the one -round-workers flag every lb* CLI
// presents (lbbench and lborch through RegisterGrid, lbserved directly):
// parse the value with ParseRoundWorkers.
func RegisterRoundWorkers(fs *flag.FlagSet, v *string) {
	fs.StringVar(v, "round-workers", "1", "round-level workers inside every stepper's node loops: a number, or 'auto' to fan out over all cores (grid sweeps split GOMAXPROCS between unit- and round-level work from the grid shape; results are byte-identical for any value)")
}

// Spec assembles the batch spec the parsed flags describe. Seed-list and
// round-workers parse errors surface here, after flag.Parse.
func (g *Grid) Spec() (batch.Spec, error) {
	seeds, err := ParseSeeds(g.Seeds)
	if err != nil {
		return batch.Spec{}, err
	}
	rw, err := ParseRoundWorkers(g.RoundWorkers)
	if err != nil {
		return batch.Spec{}, err
	}
	return batch.Spec{
		Topologies:   SplitList(g.Topos),
		Algorithms:   SplitList(g.Algos),
		Modes:        SplitList(g.Modes),
		Workloads:    SplitList(g.Loads),
		Scenarios:    SplitList(g.Scenarios),
		Seeds:        seeds,
		N:            g.N,
		Scale:        g.Scale,
		Epsilon:      g.Eps,
		MaxRounds:    g.Rounds,
		Workers:      g.Parallel,
		RoundWorkers: rw,
	}, nil
}

// Output holds the shared report-output flag values.
type Output struct {
	Format    string
	StreamAgg bool
}

// RegisterOutput registers the report knobs every sweep CLI ends with.
func RegisterOutput(fs *flag.FlagSet) *Output {
	o := &Output{}
	fs.StringVar(&o.Format, "format", "table", "final report format (table, csv, json)")
	fs.BoolVar(&o.StreamAgg, "stream-agg", false, "streaming-only aggregation: fold aggregates and per-dimension marginals incrementally, never materializing cells")
	return o
}

// CheckFormat validates the -format value.
func (o *Output) CheckFormat() error {
	switch o.Format {
	case "table", "csv", "json":
		return nil
	}
	return badFormatError(o.Format)
}

type badFormatError string

func (e badFormatError) Error() string {
	return "unknown -format \"" + string(e) + "\" (want table, csv or json)"
}
