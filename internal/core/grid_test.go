package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/batch"
)

func gridSpec() batch.Spec {
	return batch.Spec{
		Topologies: []string{"cycle", "torus", "hypercube"},
		Algorithms: []string{"diffusion", "dimexchange", "randpair"},
		Modes:      []string{"continuous", "discrete"},
		Workloads:  []string{"spike", "uniform"},
		Seeds:      []int64{1, 2},
		N:          24,
	}
}

func TestBalanceGridConvergesEverywhere(t *testing.T) {
	rep, err := BalanceGrid(gridSpec())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() != 0 {
		t.Fatalf("%d units failed", rep.Failed())
	}
	for _, c := range rep.Cells {
		if !c.Converged {
			t.Fatalf("%s did not converge (Φ %v → %v in %d rounds)", c.Key(), c.PhiStart, c.PhiEnd, c.Rounds)
		}
		if c.Bound > 0 && float64(c.Rounds) > c.Bound {
			t.Fatalf("%s: %d rounds exceeds %s bound %v", c.Key(), c.Rounds, c.BoundName, c.Bound)
		}
		if c.RMSDiscrepancy < 0 {
			t.Fatalf("%s: negative discrepancy", c.Key())
		}
	}
	// Diffusion cells must carry their theorem bound.
	for _, c := range rep.Cells {
		if c.Algorithm == "diffusion" && c.WorkloadName == "spike" && c.BoundName == "" {
			t.Fatalf("%s: missing theorem bound", c.Key())
		}
	}
}

func TestBalanceGridDeterministicAcrossWorkers(t *testing.T) {
	render := func(workers int) []byte {
		spec := gridSpec()
		spec.Workers = workers
		rep, err := BalanceGrid(spec)
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		if err := rep.RenderCSV(&b); err != nil {
			t.Fatal(err)
		}
		if err := rep.RenderJSON(&b); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	if !bytes.Equal(render(1), render(8)) {
		t.Fatal("aggregated grid output differs between workers=1 and workers=8")
	}
}

func TestBalanceGridRejectsUnknownAlgorithm(t *testing.T) {
	spec := gridSpec()
	spec.Algorithms = []string{"diffusion", "gradientdescent"}
	if _, err := BalanceGrid(spec); err == nil {
		t.Fatal("unknown algorithm must fail the sweep up front")
	}
}

func TestBalanceGridUnsupportedComboIsCellError(t *testing.T) {
	// firstorder is continuous-only: its discrete cells must error without
	// sinking the rest of the sweep.
	spec := batch.Spec{
		Topologies: []string{"cycle"},
		Algorithms: []string{"diffusion", "firstorder"},
		Modes:      []string{"continuous", "discrete"},
		Workloads:  []string{"spike"},
		N:          16,
	}
	rep, err := BalanceGrid(spec)
	if err != nil {
		t.Fatal(err)
	}
	var bad, good int
	for _, c := range rep.Cells {
		switch {
		case c.Algorithm == "firstorder" && c.Mode == "discrete":
			bad++
			if !strings.Contains(c.Err, "continuous mode only") {
				t.Fatalf("expected mode error, got %q", c.Err)
			}
		default:
			good++
			if c.Err != "" || !c.Converged {
				t.Fatalf("healthy cell %s affected: %+v", c.Key(), c)
			}
		}
	}
	if bad != 1 || good != 3 {
		t.Fatalf("bad=%d good=%d, want 1/3", bad, good)
	}
}
