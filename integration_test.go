// Cross-cutting integration tests: exercise the public core API across
// every algorithm × topology × mode combination and check the global
// invariants that no single package test can see end to end.
package repro

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/spectral"
	"repro/internal/workload"
)

func integrationTopologies() []*graph.G {
	return []*graph.G{
		graph.Cycle(24),
		graph.Torus(4, 5),
		graph.Hypercube(4),
		graph.Star(20),
		graph.Path(20),
	}
}

func TestAllAlgorithmsConvergeContinuous(t *testing.T) {
	algorithms := []core.Algorithm{
		core.Diffusion, core.DimensionExchange, core.RandomPartners,
		core.FirstOrder, core.SecondOrder,
	}
	for _, g := range integrationTopologies() {
		for _, alg := range algorithms {
			res, err := core.Balance(core.Config{
				Graph:     g,
				Algorithm: alg,
				Mode:      core.Continuous,
				Loads:     core.SpikeLoads(g.N(), 1e6),
				Epsilon:   1e-3,
				Seed:      42,
				MaxRounds: 2_000_000,
			})
			if err != nil {
				t.Fatalf("%s/%v: %v", g.Name(), alg, err)
			}
			if !res.Converged {
				t.Fatalf("%s/%v: did not converge in %d rounds (Φ %v → %v)",
					g.Name(), alg, res.Rounds, res.PhiStart, res.PhiEnd)
			}
		}
	}
}

func TestAllAlgorithmsDiscreteConverge(t *testing.T) {
	algorithms := []core.Algorithm{core.Diffusion, core.DimensionExchange, core.RandomPartners}
	for _, g := range integrationTopologies() {
		for _, alg := range algorithms {
			res, err := core.Balance(core.Config{
				Graph:     g,
				Algorithm: alg,
				Mode:      core.Discrete,
				Loads:     core.SpikeLoads(g.N(), 1e8),
				Epsilon:   1e-6,
				Seed:      7,
				MaxRounds: 5_000_000,
			})
			if err != nil {
				t.Fatalf("%s/%v: %v", g.Name(), alg, err)
			}
			if !res.Converged {
				t.Fatalf("%s/%v: discrete run did not reach its target (Φ %v → %v in %d rounds)",
					g.Name(), alg, res.PhiStart, res.PhiEnd, res.Rounds)
			}
		}
	}
}

func TestRandomizedAlgorithmsDeterministicGivenSeed(t *testing.T) {
	g := graph.Torus(4, 4)
	for _, alg := range []core.Algorithm{core.DimensionExchange, core.RandomPartners} {
		run := func() core.Result {
			res, err := core.Balance(core.Config{
				Graph:     g,
				Algorithm: alg,
				Loads:     core.SpikeLoads(g.N(), 1e5),
				Epsilon:   1e-3,
				Seed:      99,
				MaxRounds: 100000,
			})
			if err != nil {
				t.Fatalf("%v: %v", alg, err)
			}
			return res
		}
		a, b := run(), run()
		if a.Rounds != b.Rounds || a.PhiEnd != b.PhiEnd {
			t.Fatalf("%v: same seed produced different runs (%d/%v vs %d/%v)",
				alg, a.Rounds, a.PhiEnd, b.Rounds, b.PhiEnd)
		}
	}
}

func TestTheoremBoundsRespectedAcrossSuite(t *testing.T) {
	// Every Diffusion run must finish within its theorem bound — the
	// end-to-end form of the E3/E4 experiments through the public API.
	for _, g := range integrationTopologies() {
		for _, mode := range []core.Mode{core.Continuous, core.Discrete} {
			res, err := core.Balance(core.Config{
				Graph:     g,
				Algorithm: core.Diffusion,
				Mode:      mode,
				Loads:     core.SpikeLoads(g.N(), 1e8),
				Epsilon:   1e-4,
			})
			if err != nil {
				t.Fatalf("%s/%v: %v", g.Name(), mode, err)
			}
			if res.Bound > 0 && float64(res.Rounds) > res.Bound {
				t.Fatalf("%s/%v: %d rounds exceeds %s bound %v",
					g.Name(), mode, res.Rounds, res.BoundName, res.Bound)
			}
		}
	}
}

func TestLambda2SolverAgreement(t *testing.T) {
	// All independent λ₂ paths must agree: dense QL, Jacobi (via full
	// spectrum), Lanczos, inverse-power CG, and the closed form.
	for _, g := range []*graph.G{graph.Cycle(40), graph.Torus(5, 5), graph.Hypercube(5)} {
		dense := spectral.MustLambda2(g)
		closed, ok := graph.KnownLambda2(g)
		if !ok {
			t.Fatalf("%s: no closed form", g.Name())
		}
		lan, err := spectral.Lambda2Lanczos(g, 3)
		if err != nil {
			t.Fatal(err)
		}
		inv, err := spectral.Lambda2InversePower(g, 3)
		if err != nil {
			t.Fatal(err)
		}
		jac, err := spectral.JacobiEigen(g.Laplacian())
		if err != nil {
			t.Fatal(err)
		}
		for name, v := range map[string]float64{
			"closed": closed, "lanczos": lan, "invpower": inv, "jacobi": jac[1],
		} {
			if math.Abs(v-dense) > 1e-6*(1+dense) {
				t.Fatalf("%s: %s λ₂ %v disagrees with dense %v", g.Name(), name, v, dense)
			}
		}
	}
}

func TestWorkloadsBalanceToSameAverage(t *testing.T) {
	// Whatever the initial distribution, continuous diffusion must settle
	// on the same per-node average (conservation + convergence together).
	g := graph.Torus(4, 4)
	for _, k := range workload.AllKinds() {
		loads := workload.Continuous(k, g.N(), 1000, newRand(5))
		var total float64
		for _, v := range loads {
			total += v
		}
		res, err := core.Balance(core.Config{
			Graph:     g,
			Algorithm: core.Diffusion,
			Loads:     loads,
			Epsilon:   1e-9,
			MaxRounds: 100000,
		})
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if res.PhiStart == 0 {
			continue // already balanced (flat workload)
		}
		if !res.Converged {
			t.Fatalf("%v: did not converge", k)
		}
		wantAvg := total / float64(g.N())
		gotDev := math.Sqrt(res.PhiEnd / float64(g.N()))
		if gotDev > 1e-3*(1+wantAvg) {
			t.Fatalf("%v: rms deviation %v from average %v", k, gotDev, wantAvg)
		}
	}
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestBalanceGridEndToEnd(t *testing.T) {
	// One grid invocation sweeps the whole (topology × algorithm × mode ×
	// workload × seed) cross product through the batch engine — the
	// end-to-end form of what the per-algorithm tests above check one
	// configuration at a time. The aggregated output must not depend on the
	// worker count.
	spec := batch.Spec{
		Topologies: []string{"cycle", "torus", "hypercube", "star"},
		Algorithms: []string{"diffusion", "dimexchange", "randpair"},
		Modes:      []string{"continuous", "discrete"},
		Workloads:  []string{"spike", "uniform"},
		Seeds:      []int64{1, 2},
		N:          20,
		Workers:    1,
	}
	rep, err := core.GridRun(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if want := 4 * 3 * 2 * 2 * 2; len(rep.Cells) != want {
		t.Fatalf("%d cells, want %d", len(rep.Cells), want)
	}
	if rep.Failed() != 0 {
		t.Fatalf("%d grid units failed", rep.Failed())
	}
	for _, c := range rep.Cells {
		if !c.Converged {
			t.Fatalf("%s did not converge", c.Key())
		}
		if c.Bound > 0 && float64(c.Rounds) > c.Bound {
			t.Fatalf("%s: %d rounds exceeds %s bound %v", c.Key(), c.Rounds, c.BoundName, c.Bound)
		}
	}

	spec.Workers = 8
	rep8, err := core.GridRun(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	var b1, b8 bytes.Buffer
	if err := rep.RenderCSV(&b1); err != nil {
		t.Fatal(err)
	}
	if err := rep8.RenderCSV(&b8); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b8.Bytes()) {
		t.Fatal("grid output differs between workers=1 and workers=8")
	}
}
