package experiments

import (
	"math"
	"math/rand"

	"repro/internal/diffusion"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/speccache"
	"repro/internal/trace"
	"repro/internal/workload"
)

func init() {
	register("E19", E19Interconnects)
}

// E19Interconnects stresses Theorem 4 and Theorem 6 on interconnect
// families beyond the paper's usual suspects: 3-D torus, cube-connected
// cycles, wrapped butterfly, Watts–Strogatz small world, random geometric
// graph and a random 4-regular expander. λ₂ comes from the numeric
// solvers (no closed forms here except the 3-D torus, which doubles as a
// solver check).
func E19Interconnects(o Options) *trace.Table {
	t := trace.NewTable("E19 — Theorems 4 & 6 on modern interconnects (spike start, ε = 1e-4)",
		"graph", "n", "δ", "λ₂", "cont. rounds", "T4 bound", "T4 ratio", "disc. rounds", "T6 bound", "T6 ratio")
	rng := rand.New(rand.NewSource(o.seed()))
	var suite []*graph.G
	if o.Quick {
		suite = []*graph.G{
			graph.Torus3D(3, 3, 3),
			graph.CubeConnectedCycles(3),
		}
	} else {
		suite = []*graph.G{
			graph.Torus3D(4, 4, 4),
			graph.CubeConnectedCycles(4),
			graph.Butterfly(4),
			graph.SmallWorld(64, 2, 0.1, rng),
			connectedRGG(96, rng),
			graph.RandomRegular(64, 4, rng),
		}
	}
	const eps = 1e-4
	rows := make([]row, len(suite))
	o.sweep(len(rows), func(i int, _ *rand.Rand) {
		g := suite[i]
		lambda2 := speccache.MustLambda2(g)
		if lambda2 <= 0 {
			return
		}
		// Continuous / Theorem 4.
		init := workload.Continuous(workload.Spike, g.N(), 1e9, nil)
		contBound := diffusion.ContinuousBound(g, lambda2, eps)
		contRounds := sim.RoundsToFraction(diffusion.NewContinuous(g, init), eps, int(contBound)+1)

		// Discrete / Theorem 6.
		tokens := workload.Discrete(workload.Spike, g.N(), 1_000_000_000, nil)
		st := diffusion.NewDiscrete(g, tokens)
		phi0 := st.Potential()
		thr := diffusion.DiscreteThreshold(g, lambda2)
		discBound := diffusion.DiscreteBound(g, lambda2, phi0)
		res := sim.Run(st, int(discBound)+1, sim.UntilPotential(thr))

		discRatio := math.NaN()
		if discBound > 0 {
			discRatio = float64(res.Rounds) / discBound
		}
		rows[i] = row{g.Name(), g.N(), g.MaxDegree(), lambda2,
			contRounds, contBound, float64(contRounds) / contBound,
			res.Rounds, discBound, discRatio}
	})
	emit(t, rows)
	t.Note("both ratio columns must stay ≤ 1: the paper's bounds are stated for arbitrary connected topologies, and these families exercise λ₂ values the closed-form suite does not reach.")
	return t
}

// connectedRGG draws random geometric graphs until one is connected.
func connectedRGG(n int, rng *rand.Rand) *graph.G {
	r := 2 * graph.ConnectivityRadius(n)
	for i := 0; i < 50; i++ {
		if g := graph.RandomGeometric(n, r, rng); g.IsConnected() {
			return g
		}
	}
	// Fall back to a denser radius; connectivity is then near-certain.
	return graph.RandomGeometric(n, 3*r, rng)
}
